//! Experiments of paper §IV: Mess characterization of memory simulators.
//!
//! * `fig4` — gem5-style memory models against the Graviton 3 reference;
//! * `fig5` — ZSim-style memory models against the Skylake reference;
//! * `fig6` — trace-driven evaluation of the external DRAM-simulator stand-ins;
//! * `fig7` — row-buffer hit/empty/miss statistics, actual versus approximate models.

use crate::report::{ExperimentReport, Fidelity};
use crate::runner::scaled_platform;
use mess_bench::sweep::{characterize_with, SweepConfig};
use mess_bench::trace::{replay, RecordingBackend, Trace};
use mess_bench::TrafficConfig;
use mess_core::metrics::FamilyMetrics;
use mess_cpu::{Engine, OpStream, StopCondition};
use mess_dram::{ApproxDramSim, ApproxProfile};
use mess_exec::ExecConfig;
use mess_platforms::{MemoryModelKind, ModelFactory, PlatformId, PlatformSpec};
use mess_types::MemoryBackend;

fn sweep_for(fidelity: Fidelity) -> SweepConfig {
    match fidelity {
        Fidelity::Quick => SweepConfig {
            store_mixes: vec![0.0, 1.0],
            pause_levels: vec![120, 20, 0],
            chase_loads: 120,
            max_cycles_per_point: 600_000,
        },
        Fidelity::Full => SweepConfig::full(),
    }
}

/// Characterizes one memory model for `platform` and returns its summary row. The model is
/// built *inside* the calling worker through a [`ModelFactory`], so every sweep point and
/// every parallel leg gets a private instance.
fn model_row(platform: &PlatformSpec, kind: MemoryModelKind, fidelity: Fidelity) -> Vec<String> {
    let factory = ModelFactory::new(kind, platform);
    let c = characterize_with(
        kind.label(),
        &platform.cpu_config(),
        || factory.build().expect("model construction is valid here"),
        &sweep_for(fidelity),
        // Runs inline when the per-model legs are parallel (nested pools never fan out);
        // parallelizes the sweep itself if this row is computed on the caller's thread.
        &ExecConfig::default(),
    )
    .expect("sweep configuration is valid");
    let m = FamilyMetrics::compute(&c.family, platform.theoretical_bandwidth());
    vec![
        kind.label().to_string(),
        format!("{:.0}", m.unloaded_latency.as_ns()),
        format!("{:.0}", m.max_latency_range.high.as_ns()),
        format!("{:.0}", m.saturated_bandwidth_range.high.as_gbs()),
        format!("{:.0}", m.saturated_bandwidth_range.high_fraction * 100.0),
    ]
}

fn simulator_comparison(
    id: &str,
    title: &str,
    platform_id: PlatformId,
    models: &[MemoryModelKind],
    fidelity: Fidelity,
) -> ExperimentReport {
    let platform = scaled_platform(&platform_id.spec(), fidelity);
    let mut report = ExperimentReport::new(
        id,
        title,
        &[
            "memory_model",
            "unloaded_ns",
            "max_latency_ns",
            "max_bandwidth_gbs",
            "max_bw_pct_of_theoretical",
        ],
    );
    // One leg per memory model; row order (reference first, then the paper's model order)
    // is preserved. With fewer models than pool workers the legs run sequentially and each
    // leg's characterization sweep takes the pool instead (for_fanout).
    let mut kinds = vec![MemoryModelKind::DetailedDram];
    kinds.extend_from_slice(models);
    let rows = mess_exec::par_map_with(&ExecConfig::for_fanout(kinds.len()), kinds, |_, kind| {
        model_row(&platform, kind, fidelity)
    });
    report.push_rows(rows);
    report.note(format!(
        "reference platform: {} ({:.0} GB/s theoretical); the detailed-dram row plays the role \
         of the actual hardware",
        platform.name,
        platform.theoretical_bandwidth().as_gbs()
    ));
    report
}

/// Paper Fig. 4: Graviton 3 versus the gem5 memory models.
pub fn fig4(fidelity: Fidelity) -> ExperimentReport {
    let models = match fidelity {
        Fidelity::Quick => vec![
            MemoryModelKind::FixedLatency,
            MemoryModelKind::Ramulator2Like,
        ],
        Fidelity::Full => MemoryModelKind::GEM5_SET.to_vec(),
    };
    simulator_comparison(
        "fig4",
        "Graviton 3 reference vs gem5-style memory models",
        PlatformId::AmazonGraviton3,
        &models,
        fidelity,
    )
}

/// Paper Fig. 5: Skylake versus the ZSim memory models.
pub fn fig5(fidelity: Fidelity) -> ExperimentReport {
    let models = match fidelity {
        Fidelity::Quick => vec![MemoryModelKind::FixedLatency, MemoryModelKind::Dramsim3Like],
        Fidelity::Full => MemoryModelKind::ZSIM_SET.to_vec(),
    };
    simulator_comparison(
        "fig5",
        "Skylake reference vs ZSim-style memory models",
        PlatformId::IntelSkylake,
        &models,
        fidelity,
    )
}

/// Captures a Mess-style memory trace from the reference platform at a given traffic level.
pub fn capture_trace(platform: &PlatformSpec, pause: u32, memory_ops: u64) -> Trace {
    let cpu = platform.cpu_config();
    let traffic = TrafficConfig::new(0.3, pause, cpu.llc.capacity_bytes);
    let streams: Vec<Box<dyn OpStream>> = traffic.lanes(cpu.cores);
    let mut recorder = RecordingBackend::new(platform.build_dram());
    let mut engine = Engine::from_boxed(cpu, streams);
    let _ = engine.run(
        &mut recorder,
        StopCondition::MemoryOps(memory_ops),
        20_000_000,
    );
    let (_, trace) = recorder.into_parts();
    trace
}

/// Paper Fig. 6: trace-driven evaluation of the DRAMsim3/Ramulator/Ramulator2 stand-ins.
pub fn fig6(fidelity: Fidelity) -> ExperimentReport {
    let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), fidelity);
    let (ops, speeds): (u64, Vec<f64>) = match fidelity {
        Fidelity::Quick => (4_000, vec![1.0, 4.0]),
        Fidelity::Full => (40_000, vec![0.5, 1.0, 2.0, 4.0, 8.0]),
    };
    let trace = capture_trace(&platform, 20, ops);
    let mut report = ExperimentReport::new(
        "fig6",
        "Trace-driven external memory simulators (paper Fig. 6)",
        &[
            "memory_model",
            "replay_speed",
            "bandwidth_gbs",
            "avg_read_latency_ns",
        ],
    );
    report.note(format!(
        "trace: {} requests, {} of them reads",
        trace.len(),
        trace.rw_ratio()
    ));
    // One replay leg per (model, speed): the trace is shared read-only, each leg builds its
    // own model. `None` marks the detailed-DRAM reference legs.
    let mut legs: Vec<(Option<ApproxProfile>, f64)> = Vec::new();
    for profile in ApproxProfile::ALL {
        legs.extend(speeds.iter().map(|&speed| (Some(profile), speed)));
    }
    legs.extend(speeds.iter().map(|&speed| (None, speed)));
    let rows = mess_exec::par_map(legs, |_, (profile, speed)| {
        let (label, r) = match profile {
            Some(profile) => {
                let mut model = ApproxDramSim::new(
                    profile,
                    platform.theoretical_bandwidth(),
                    platform.frequency,
                );
                (
                    profile.label(),
                    replay(&trace, &mut model, platform.frequency, speed),
                )
            }
            None => {
                let mut dram = platform.build_dram();
                (
                    "detailed-dram",
                    replay(&trace, &mut dram, platform.frequency, speed),
                )
            }
        };
        vec![
            label.to_string(),
            format!("{speed:.1}"),
            format!("{:.2}", r.bandwidth.as_gbs()),
            format!("{:.1}", r.latency.as_ns()),
        ]
    });
    report.push_rows(rows);
    report
}

/// Drives a backend with the Mess traffic generator at full intensity and returns the
/// row-buffer statistics (hit/empty/miss percentages).
fn row_buffer_stats(
    platform: &PlatformSpec,
    backend: &mut dyn MemoryBackend,
    store_mix: f64,
    pause: u32,
    max_cycles: u64,
) -> (f64, mess_types::RowBufferStats) {
    let cpu = platform.cpu_config();
    let traffic = TrafficConfig::new(store_mix, pause, cpu.llc.capacity_bytes);
    let streams: Vec<Box<dyn OpStream>> = traffic.lanes(cpu.cores);
    let mut engine = Engine::from_boxed(cpu, streams);
    let report = engine.run(backend, StopCondition::AllStreamsDone, max_cycles);
    (report.bandwidth.as_gbs(), report.memory.row_buffer)
}

/// Paper Fig. 7: row-buffer statistics of the actual platform versus DRAMsim3- and
/// Ramulator-like models, for 100 %-read and 100 %-store traffic.
pub fn fig7(fidelity: Fidelity) -> ExperimentReport {
    let platform = scaled_platform(&PlatformId::IntelCascadeLake.spec(), fidelity);
    let max_cycles = match fidelity {
        Fidelity::Quick => 400_000,
        Fidelity::Full => 4_000_000,
    };
    let pauses: Vec<u32> = match fidelity {
        Fidelity::Quick => vec![80, 0],
        Fidelity::Full => vec![200, 80, 40, 20, 8, 0],
    };
    let mut report = ExperimentReport::new(
        "fig7",
        "Row-buffer statistics: actual vs DRAMsim3-like vs Ramulator-like (paper Fig. 7)",
        &[
            "memory_model",
            "traffic",
            "pause",
            "bandwidth_gbs",
            "hit_pct",
            "empty_pct",
            "miss_pct",
        ],
    );
    // The full (model, traffic, pause) grid runs in parallel; each leg builds its own
    // backend. `None` marks the detailed-DRAM legs, like fig6.
    let mut legs: Vec<(Option<ApproxProfile>, &str, f64, u32)> = Vec::new();
    for profile in [
        None,
        Some(ApproxProfile::Dramsim3Like),
        Some(ApproxProfile::RamulatorLike),
    ] {
        for (traffic_label, mix) in [("100%-read", 0.0), ("100%-store", 1.0)] {
            legs.extend(
                pauses
                    .iter()
                    .map(|&pause| (profile, traffic_label, mix, pause)),
            );
        }
    }
    let rows = mess_exec::par_map(legs, |_, (profile, traffic_label, mix, pause)| {
        let mut backend: Box<dyn MemoryBackend + Send> = match profile {
            None => Box::new(platform.build_dram()),
            Some(profile) => Box::new(ApproxDramSim::new(
                profile,
                platform.theoretical_bandwidth(),
                platform.frequency,
            )),
        };
        let label = profile.map_or("detailed-dram", |p| p.label());
        let (bw, rb) = row_buffer_stats(&platform, backend.as_mut(), mix, pause, max_cycles);
        vec![
            label.to_string(),
            traffic_label.to_string(),
            pause.to_string(),
            format!("{bw:.1}"),
            format!("{:.0}", rb.hit_rate() * 100.0),
            format!("{:.0}", rb.empty_rate() * 100.0),
            format!("{:.0}", rb.miss_rate() * 100.0),
        ]
    });
    report.push_rows(rows);
    report.note(
        "paper: the actual platform starts at 84/13/3% hit/empty/miss for unloaded reads \
                 and degrades with load and with the write share",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shows_fixed_latency_flatness_against_the_reference() {
        let r = fig5(Fidelity::Quick);
        assert_eq!(r.rows.len(), 3);
        let find = |name: &str| {
            r.rows
                .iter()
                .find(|row| row[0] == name)
                .unwrap_or_else(|| panic!("{name} row missing"))
                .clone()
        };
        let detailed = find("detailed-dram");
        let fixed = find("fixed-latency");
        let detailed_spread: f64 =
            detailed[2].parse::<f64>().unwrap() - detailed[1].parse::<f64>().unwrap();
        let fixed_spread: f64 = fixed[2].parse::<f64>().unwrap() - fixed[1].parse::<f64>().unwrap();
        assert!(
            detailed_spread > fixed_spread,
            "the reference memory must show more latency growth than the fixed model: {detailed_spread} vs {fixed_spread}"
        );
    }

    #[test]
    fn fig6_trace_replay_produces_rows_for_every_profile() {
        let r = fig6(Fidelity::Quick);
        assert_eq!(r.rows.len(), (3 + 1) * 2);
        assert!(r.notes[0].contains("requests"));
    }

    #[test]
    fn fig7_reports_row_buffer_percentages_that_sum_to_about_100() {
        let r = fig7(Fidelity::Quick);
        for row in &r.rows {
            if row[0] != "detailed-dram" && row[3].parse::<f64>().unwrap() == 0.0 {
                continue;
            }
            let total: f64 = row[4].parse::<f64>().unwrap()
                + row[5].parse::<f64>().unwrap()
                + row[6].parse::<f64>().unwrap();
            assert!((total - 100.0).abs() < 3.0, "row {row:?} sums to {total}");
        }
    }
}
