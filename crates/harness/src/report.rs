//! Tabular experiment reports (re-exported from the scenario layer).
//!
//! The report types moved into `mess-scenario` with the declarative scenario refactor — the
//! engine that produces them lives there — and are re-exported here so harness callers and
//! the Criterion benches keep their import paths.

pub use mess_scenario::report::{CampaignSummary, ExperimentReport, ExperimentSummary, Fidelity};
