//! CLI entry point: regenerate the paper's tables and figures.
//!
//! ```text
//! mess-harness --experiment fig5            # one experiment at full fidelity
//! mess-harness --experiment all --quick     # smoke-run everything
//! mess-harness --list                       # show the experiment index
//! mess-harness --experiment fig2 --csv      # machine-readable output
//! ```

use mess_harness::{run_experiment, Fidelity, EXPERIMENTS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut fidelity = Fidelity::Full;
    let mut csv = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--experiment" | "-e" => experiment = iter.next().cloned(),
            "--quick" => fidelity = Fidelity::Quick,
            "--full" => fidelity = Fidelity::Full,
            "--csv" => csv = true,
            "--list" => {
                for id in EXPERIMENTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: mess-harness --experiment <id|all> [--quick|--full] [--csv] [--list]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(experiment) = experiment else {
        eprintln!("missing --experiment <id|all>; use --list to see the available experiments");
        return ExitCode::FAILURE;
    };

    let ids: Vec<&str> = if experiment == "all" {
        EXPERIMENTS.to_vec()
    } else {
        vec![experiment.as_str()]
    };
    for id in ids {
        match run_experiment(id, fidelity) {
            Some(report) => {
                if csv {
                    print!("{}", report.to_csv());
                } else {
                    println!("{report}");
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
