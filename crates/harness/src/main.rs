//! CLI entry point: regenerate the paper's tables and figures, or run scenario files.
//!
//! ```text
//! mess-harness --experiment fig5              # one builtin experiment at full fidelity
//! mess-harness --experiment all --quick       # smoke-run everything (parallel job runner)
//! mess-harness --experiment fig2 --out out/   # also write out/fig2.csv + summary JSON
//! mess-harness --dump-spec fig11 --quick      # export the builtin as editable JSON
//! mess-harness --scenario my-scenario.json    # run one scenario from a file
//! mess-harness --campaign my-campaign.json    # run a batch of scenarios from a file
//! mess-harness --list                         # experiment index with paper anchors
//! mess-harness --experiment fig2 --csv        # machine-readable stdout
//! mess-harness --threads 1 -e fig2            # fully sequential reference run
//! mess-harness --scenario c.json --curves-out curves/   # persist measured CurveSets
//! mess-harness --scenario m.json --curves curves/x.json # run from a saved CurveSet
//! mess-harness --list-curves curves/          # index the artifacts in a directory
//! ```
//!
//! `--threads N` sets the process-wide `mess-exec` worker count — a true cap, because
//! nested pools run inline. For a single experiment the N workers go to the driver's
//! per-sweep-point / per-leg parallelism; for `--experiment all` and `--campaign` they go
//! to running up to N experiments concurrently (each internally sequential). The default is
//! one worker per available hardware thread; the output is byte-identical at every setting.
//!
//! Scenario and campaign files carry their own sizing (a `--dump-spec` export bakes the
//! chosen fidelity in), so `--quick`/`--full` only affect builtin experiment ids.
//!
//! `--curves-out DIR` writes every curve family the run characterizes as a versioned,
//! provenance-carrying `CurveSet` JSON artifact; `--curves FILE` loads such an artifact
//! and overrides every curve source in the run with it (the way to re-simulate or
//! re-profile from a saved characterization without editing the spec). Both flags also
//! work with builtin experiment ids, which then run through their scenario specs.
//!
//! Observability (see the "Observability" section of this crate's README):
//! `--progress` narrates every scenario/leg event on stderr, `--trace-out FILE` writes
//! the run's span timeline as NDJSON, and `--metrics` appends the process metric
//! registry (Prometheus text) to stdout after the reports. All three are reporting-only:
//! reports, artifacts and digests stay byte-identical with them on or off.

use mess_exec::JobEvent;
use mess_harness::{
    run_experiment, run_experiments, write_curve_sets, write_reports, CurveSet, Fidelity, BUILTINS,
    EXPERIMENTS,
};
use mess_scenario::{CampaignSpec, ProgressSink, ScenarioOptions, ScenarioSpec, TraceProgress};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The CLI's composite progress sink: optional stderr narration (the event's canonical
/// one-line `Display`) plus the span recorder feeding `--trace-out`. Both halves are
/// read-only observers — wrapping a run with this sink cannot change its outputs.
struct CliSink {
    narrate: bool,
    trace: TraceProgress,
}

impl ProgressSink for CliSink {
    fn emit(&self, event: mess_scenario::ProgressEvent) {
        if self.narrate {
            eprintln!("[mess-harness] {event}");
        }
        self.trace.emit(event);
    }
}

/// What the invocation asks for.
enum Mode {
    /// Run a builtin experiment id (or `all`).
    Experiment(String),
    /// Print a builtin experiment's scenario spec as JSON.
    DumpSpec(String),
    /// Run one scenario from a JSON file.
    Scenario(PathBuf),
    /// Run a campaign of scenarios from a JSON file.
    Campaign(PathBuf),
    /// Print the experiment index.
    List,
    /// Print an index of the CurveSet artifacts in a directory.
    ListCurves(PathBuf),
}

fn usage() {
    println!(
        "usage: mess-harness --experiment|-e <id|all> [--quick|--full] [--csv] [--out DIR] \
         [--threads|-j N] [--curves FILE] [--curves-out DIR] [--progress] \
         [--trace-out FILE] [--metrics]\n\
         \x20      mess-harness --dump-spec <id> [--quick|--full]\n\
         \x20      mess-harness --scenario <file.json> [--csv] [--out DIR] [--threads|-j N] \
         [--curves FILE] [--curves-out DIR] [--progress] [--trace-out FILE] [--metrics]\n\
         \x20      mess-harness --campaign <file.json> [--csv] [--out DIR] [--threads|-j N] \
         [--curves FILE] [--curves-out DIR] [--progress] [--trace-out FILE] [--metrics]\n\
         \x20      mess-harness --list\n\
         \x20      mess-harness --list-curves <dir>"
    );
}

/// Prints a one-line summary per CurveSet artifact in `dir` (non-artifact JSON files are
/// reported, not fatal).
fn list_curves(dir: &Path) -> ExitCode {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        println!("no .json files in {}", dir.display());
        return ExitCode::SUCCESS;
    }
    for path in paths {
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        match CurveSet::load(&path) {
            Ok(set) => {
                let family = set.family();
                let points: usize = family.curves().iter().map(|c| c.len()).sum();
                let p = set.provenance();
                println!(
                    "{name}: \"{}\" v{} — platform {}, model {}, {} curves / {points} points, \
                     unloaded {:.0} ns, max bw {:.1} GB/s [scenario {}; {}]",
                    set.name(),
                    set.version(),
                    p.platform,
                    p.model,
                    family.len(),
                    family.unloaded_latency().as_ns(),
                    family.max_bandwidth().as_gbs(),
                    p.scenario,
                    p.sweep,
                );
            }
            Err(e) => println!("{name}: not a loadable curve set ({e})"),
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<Mode> = None;
    let mut fidelity = Fidelity::Full;
    let mut csv = false;
    let mut out: Option<PathBuf> = None;
    let mut curves_out: Option<PathBuf> = None;
    let mut curves_file: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut narrate = false;
    let mut metrics = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                let Some(id) = iter.next() else {
                    eprintln!("--experiment expects an id (use --list)");
                    return ExitCode::FAILURE;
                };
                mode = Some(Mode::Experiment(id.clone()));
            }
            "--dump-spec" => {
                let Some(id) = iter.next() else {
                    eprintln!("--dump-spec expects an experiment id (use --list)");
                    return ExitCode::FAILURE;
                };
                mode = Some(Mode::DumpSpec(id.clone()));
            }
            "--scenario" => {
                let Some(path) = iter.next() else {
                    eprintln!("--scenario expects a JSON file path");
                    return ExitCode::FAILURE;
                };
                mode = Some(Mode::Scenario(PathBuf::from(path)));
            }
            "--campaign" => {
                let Some(path) = iter.next() else {
                    eprintln!("--campaign expects a JSON file path");
                    return ExitCode::FAILURE;
                };
                mode = Some(Mode::Campaign(PathBuf::from(path)));
            }
            "--quick" => fidelity = Fidelity::Quick,
            "--full" => fidelity = Fidelity::Full,
            "--csv" => csv = true,
            "--out" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--out expects a directory path");
                    return ExitCode::FAILURE;
                };
                out = Some(PathBuf::from(dir));
            }
            "--curves-out" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--curves-out expects a directory path");
                    return ExitCode::FAILURE;
                };
                curves_out = Some(PathBuf::from(dir));
            }
            "--curves" => {
                let Some(file) = iter.next() else {
                    eprintln!("--curves expects a CurveSet JSON file path");
                    return ExitCode::FAILURE;
                };
                curves_file = Some(PathBuf::from(file));
            }
            "--trace-out" => {
                let Some(file) = iter.next() else {
                    eprintln!("--trace-out expects a file path");
                    return ExitCode::FAILURE;
                };
                trace_out = Some(PathBuf::from(file));
            }
            "--progress" => narrate = true,
            "--metrics" => metrics = true,
            "--list-curves" => {
                let Some(dir) = iter.next() else {
                    eprintln!("--list-curves expects a directory path");
                    return ExitCode::FAILURE;
                };
                mode = Some(Mode::ListCurves(PathBuf::from(dir)));
            }
            "--threads" | "-j" => {
                let Some(n) = iter.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads expects a positive integer");
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--threads expects a positive integer");
                    return ExitCode::FAILURE;
                }
                mess_exec::set_default_threads(n);
            }
            "--list" => mode = Some(Mode::List),
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(mode) = mode else {
        eprintln!(
            "missing --experiment <id|all>, --scenario, --campaign, --dump-spec, --list or \
             --list-curves"
        );
        return ExitCode::FAILURE;
    };

    // Observability setup. Metrics and tracing both hang off the single process-global
    // enable; the root `run` span anchors every timeline so the trace accounts for the
    // whole invocation's wall time.
    if metrics || trace_out.is_some() {
        mess_obs::set_enabled(true);
    }
    if trace_out.is_some() {
        mess_obs::trace::start();
    }
    let root_span = trace_out
        .as_ref()
        .map(|_| mess_obs::Span::start("run").entered());

    // The --curves override loads (and strictly validates) once, up front.
    let options = match &curves_file {
        Some(path) => match CurveSet::load(path) {
            Ok(set) => {
                eprintln!(
                    "[mess-harness] curves override: \"{}\" ({} curves, platform {}, model {}) \
                     from {}",
                    set.name(),
                    set.family().len(),
                    set.provenance().platform,
                    set.provenance().model,
                    path.display()
                );
                ScenarioOptions {
                    curves: Some(set),
                    ..Default::default()
                }
            }
            Err(e) => {
                eprintln!("cannot load --curves artifact: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => ScenarioOptions::default(),
    };
    // Builtin ids normally dispatch through their thin drivers; the curve flags need the
    // spec pipeline's outcome (artifacts) and the observability flags need its
    // `ProgressSink` seam, so any of them reroutes builtins through their specs.
    let observed = narrate || metrics || trace_out.is_some();
    let wants_curve_flow = curves_out.is_some() || curves_file.is_some() || observed;
    let sink = CliSink {
        narrate,
        trace: TraceProgress::new(),
    };
    let run_scenario_any = |spec: &ScenarioSpec| {
        if observed {
            mess_scenario::run_scenario_observed(spec, &options, &sink)
        } else {
            mess_scenario::run_scenario_with(spec, &options)
        }
    };

    let print = |report: &mess_harness::ExperimentReport| {
        if csv {
            print!("{}", report.to_csv());
        } else {
            println!("{report}");
        }
    };
    let progress = |event: JobEvent<'_>| match event {
        JobEvent::Started { name, .. } => eprintln!("[mess-harness] {name} started"),
        JobEvent::Finished {
            name,
            completed,
            total,
            ..
        } => eprintln!("[mess-harness] {name} finished ({completed}/{total})"),
    };
    // Campaigns narrate coarse per-scenario job lines by default; with observability on
    // they go through the `ProgressSink` seam instead, which narrates finer (per leg)
    // and feeds the span recorder.
    let run_campaign_any = |campaign: &CampaignSpec| {
        if observed {
            mess_scenario::run_campaign_observed(campaign, &options, &sink)
        } else {
            mess_scenario::run_campaign_with(campaign, &options, progress)
        }
    };
    let write_out = |name: &str, reports: &[mess_harness::ExperimentReport]| -> bool {
        let Some(dir) = &out else { return true };
        match write_reports(dir, name, reports) {
            Ok(written) => {
                eprintln!(
                    "[mess-harness] wrote {} files to {}",
                    written.len(),
                    dir.display()
                );
                true
            }
            Err(e) => {
                eprintln!("cannot write to {}: {e}", dir.display());
                false
            }
        }
    };
    let write_curves = |sets: &[CurveSet]| -> bool {
        let Some(dir) = &curves_out else { return true };
        if sets.is_empty() {
            eprintln!(
                "[mess-harness] the run measured no curve families (nothing to write to {})",
                dir.display()
            );
            return true;
        }
        match write_curve_sets(dir, sets) {
            Ok(written) => {
                eprintln!(
                    "[mess-harness] wrote {} curve artifact(s) to {}",
                    written.len(),
                    dir.display()
                );
                true
            }
            Err(e) => {
                eprintln!("cannot write curves to {}: {e}", dir.display());
                false
            }
        }
    };

    let code = match mode {
        Mode::List => {
            for b in &BUILTINS {
                println!("{:<8} {} [{}]", b.id, b.description, b.anchor);
            }
            ExitCode::SUCCESS
        }
        Mode::ListCurves(dir) => list_curves(&dir),
        Mode::DumpSpec(id) => match mess_harness::experiment_info(&id) {
            Some(info) => {
                println!("{}", info.spec(fidelity).to_json());
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment: {id}");
                ExitCode::FAILURE
            }
        },
        Mode::Experiment(id) if id == "all" && !wants_curve_flow => {
            // The whole campaign goes through the job-graph runner: experiments execute
            // concurrently, progress is narrated on stderr, reports print in paper order.
            let reports = run_experiments(&EXPERIMENTS, fidelity, progress)
                .expect("EXPERIMENTS contains only known ids");
            for report in &reports {
                print(report);
            }
            if write_out("all", &reports) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Mode::Experiment(id) if id == "all" => {
            // Curve flags need the spec pipeline: run every builtin as a campaign of its
            // scenario spec (same job runner, same report order).
            let campaign = CampaignSpec {
                name: "all".into(),
                scenarios: EXPERIMENTS
                    .iter()
                    .map(|id| {
                        mess_scenario::builtin_spec(id, fidelity).expect("builtin ids resolve")
                    })
                    .collect(),
            };
            match run_campaign_any(&campaign) {
                Ok(outcomes) => {
                    let reports: Vec<_> = outcomes.iter().map(|o| o.report.clone()).collect();
                    for report in &reports {
                        print(report);
                    }
                    let sets: Vec<CurveSet> =
                        outcomes.into_iter().flat_map(|o| o.curve_sets).collect();
                    if write_out("all", &reports) && write_curves(&sets) {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("experiment all failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Experiment(id) if !wants_curve_flow => match run_experiment(&id, fidelity) {
            Some(report) => {
                print(&report);
                if write_out(&report.id, std::slice::from_ref(&report)) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                ExitCode::FAILURE
            }
        },
        Mode::Experiment(id) => match mess_harness::experiment_info(&id) {
            Some(info) => {
                let spec = info.spec(fidelity);
                match run_scenario_any(&spec) {
                    Ok(outcome) => {
                        print(&outcome.report);
                        if write_out(&outcome.report.id, std::slice::from_ref(&outcome.report))
                            && write_curves(&outcome.curve_sets)
                        {
                            ExitCode::SUCCESS
                        } else {
                            ExitCode::FAILURE
                        }
                    }
                    Err(e) => {
                        eprintln!("experiment {id} failed: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            None => {
                eprintln!("unknown experiment: {id}");
                ExitCode::FAILURE
            }
        },
        Mode::Scenario(path) => {
            let spec = match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| ScenarioSpec::from_json(&text).map_err(|e| e.to_string()))
            {
                Ok(spec) => spec,
                Err(e) => {
                    eprintln!("cannot load scenario {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match run_scenario_any(&spec) {
                Ok(outcome) => {
                    print(&outcome.report);
                    if write_out(&spec.id, std::slice::from_ref(&outcome.report))
                        && write_curves(&outcome.curve_sets)
                    {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("scenario {} failed: {e}", spec.id);
                    ExitCode::FAILURE
                }
            }
        }
        Mode::Campaign(path) => {
            let campaign = match std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| CampaignSpec::from_json(&text).map_err(|e| e.to_string()))
            {
                Ok(campaign) => campaign,
                Err(e) => {
                    eprintln!("cannot load campaign {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match run_campaign_any(&campaign) {
                Ok(outcomes) => {
                    let reports: Vec<_> = outcomes.iter().map(|o| o.report.clone()).collect();
                    for report in &reports {
                        print(report);
                    }
                    let sets: Vec<CurveSet> =
                        outcomes.into_iter().flat_map(|o| o.curve_sets).collect();
                    if write_out(&campaign.name, &reports) && write_curves(&sets) {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("campaign {} failed: {e}", campaign.name);
                    ExitCode::FAILURE
                }
            }
        }
    };

    // Close the root span before collecting, so its duration covers everything above.
    drop(root_span);
    if let Some(path) = &trace_out {
        let records = mess_obs::trace::finish();
        let written = std::fs::File::create(path)
            .and_then(|mut file| mess_obs::trace::write_ndjson(&records, &mut file));
        match written {
            Ok(()) => eprintln!(
                "[mess-harness] wrote {} trace record(s) to {}",
                records.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("cannot write trace to {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if metrics {
        // The summary block goes to stdout *after* every report, so reports themselves
        // (and their files under --out) stay byte-identical with or without it.
        println!("\n== metrics ==");
        print!("{}", mess_obs::Registry::global().render_prometheus());
    }
    code
}
