//! CLI entry point: regenerate the paper's tables and figures.
//!
//! ```text
//! mess-harness --experiment fig5            # one experiment at full fidelity
//! mess-harness --experiment all --quick     # smoke-run everything (parallel job runner)
//! mess-harness --experiment all --threads 4 # cap the worker pool at 4 threads
//! mess-harness --threads 1 -e fig2          # fully sequential reference run
//! mess-harness --list                       # show the experiment index
//! mess-harness --experiment fig2 --csv      # machine-readable output
//! ```
//!
//! `--threads N` sets the process-wide `mess-exec` worker count — a true cap, because
//! nested pools run inline. For a single experiment the N workers go to the driver's
//! per-sweep-point / per-leg parallelism; for `--experiment all` they go to running up to N
//! experiments concurrently (each internally sequential). The default is one worker per
//! available hardware thread; the output is byte-identical at every setting.

use mess_exec::JobEvent;
use mess_harness::{run_experiment, run_experiments, Fidelity, EXPERIMENTS};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment: Option<String> = None;
    let mut fidelity = Fidelity::Full;
    let mut csv = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--experiment" | "-e" => experiment = iter.next().cloned(),
            "--quick" => fidelity = Fidelity::Quick,
            "--full" => fidelity = Fidelity::Full,
            "--csv" => csv = true,
            "--threads" | "-j" => {
                let Some(n) = iter.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("--threads expects a positive integer");
                    return ExitCode::FAILURE;
                };
                if n == 0 {
                    eprintln!("--threads expects a positive integer");
                    return ExitCode::FAILURE;
                }
                mess_exec::set_default_threads(n);
            }
            "--list" => {
                for id in EXPERIMENTS {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: mess-harness --experiment|-e <id|all> [--quick|--full] [--csv] \
                     [--threads|-j N] [--list]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(experiment) = experiment else {
        eprintln!("missing --experiment <id|all>; use --list to see the available experiments");
        return ExitCode::FAILURE;
    };

    let print = |report: &mess_harness::ExperimentReport| {
        if csv {
            print!("{}", report.to_csv());
        } else {
            println!("{report}");
        }
    };
    if experiment == "all" {
        // The whole campaign goes through the job-graph runner: experiments execute
        // concurrently, progress is narrated on stderr, reports print in paper order.
        let progress = |event: JobEvent<'_>| match event {
            JobEvent::Started { name, .. } => eprintln!("[mess-harness] {name} started"),
            JobEvent::Finished {
                name,
                completed,
                total,
                ..
            } => eprintln!("[mess-harness] {name} finished ({completed}/{total})"),
        };
        let reports = run_experiments(&EXPERIMENTS, fidelity, progress)
            .expect("EXPERIMENTS contains only known ids");
        for report in &reports {
            print(report);
        }
    } else {
        match run_experiment(&experiment, fidelity) {
            Some(report) => print(&report),
            None => {
                eprintln!("unknown experiment: {experiment}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
