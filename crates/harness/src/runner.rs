//! Shared helpers for the experiment drivers: workload construction and IPC measurement.

use crate::report::Fidelity;
use mess_cpu::{Engine, OpStream, RunReport, StopCondition};
use mess_platforms::PlatformSpec;
use mess_types::MemoryBackend;
use mess_workloads::latency::{LatMemRdConfig, MultichaseConfig};
use mess_workloads::stream::{StreamConfig, StreamKernel};

/// The six validation workloads of the IPC-error comparisons (Figs. 11 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidationWorkload {
    /// STREAM Copy.
    StreamCopy,
    /// STREAM Scale.
    StreamScale,
    /// STREAM Add.
    StreamAdd,
    /// STREAM Triad.
    StreamTriad,
    /// LMbench `lat_mem_rd`.
    Lmbench,
    /// Google multichase.
    Multichase,
}

impl ValidationWorkload {
    /// The workloads in the order the paper's bar charts list them.
    pub const ALL: [ValidationWorkload; 6] = [
        ValidationWorkload::StreamCopy,
        ValidationWorkload::StreamScale,
        ValidationWorkload::StreamAdd,
        ValidationWorkload::StreamTriad,
        ValidationWorkload::Lmbench,
        ValidationWorkload::Multichase,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ValidationWorkload::StreamCopy => "STREAM:copy",
            ValidationWorkload::StreamScale => "STREAM:scale",
            ValidationWorkload::StreamAdd => "STREAM:add",
            ValidationWorkload::StreamTriad => "STREAM:triad",
            ValidationWorkload::Lmbench => "LMbench",
            ValidationWorkload::Multichase => "multichase",
        }
    }

    /// Builds the workload's per-core op streams for `platform`, scaled by `fidelity`.
    pub fn streams(self, platform: &PlatformSpec, fidelity: Fidelity) -> Vec<Box<dyn OpStream>> {
        let cpu = platform.cpu_config();
        let cores = cpu.cores;
        let llc = cpu.llc.capacity_bytes;
        let scale = match fidelity {
            Fidelity::Quick => 1,
            Fidelity::Full => 4,
        };
        match self {
            ValidationWorkload::StreamCopy
            | ValidationWorkload::StreamScale
            | ValidationWorkload::StreamAdd
            | ValidationWorkload::StreamTriad => {
                let kernel = match self {
                    ValidationWorkload::StreamCopy => StreamKernel::Copy,
                    ValidationWorkload::StreamScale => StreamKernel::Scale,
                    ValidationWorkload::StreamAdd => StreamKernel::Add,
                    _ => StreamKernel::Triad,
                };
                let config = StreamConfig {
                    kernel,
                    array_bytes: (llc * scale).max(1 << 22),
                    iterations: 1,
                    cores,
                };
                config.streams()
            }
            ValidationWorkload::Lmbench => {
                let mut config = LatMemRdConfig::main_memory(llc);
                config.loads = 3_000 * scale;
                one_active_core(config.stream(), cores)
            }
            ValidationWorkload::Multichase => {
                let mut config = MultichaseConfig::main_memory(llc);
                config.loads = 3_000 * scale;
                one_active_core(config.stream(), cores)
            }
        }
    }
}

/// Pads a single-core workload with idle streams so the engine still models every core.
fn one_active_core(active: Box<dyn OpStream>, cores: u32) -> Vec<Box<dyn OpStream>> {
    let mut streams = vec![active];
    for _ in 1..cores {
        streams.push(
            Box::new(mess_cpu::VecStream::with_label(Vec::new(), "idle")) as Box<dyn OpStream>,
        );
    }
    streams
}

/// Runs `streams` on `platform`'s CPU configuration against `backend` and returns the report.
pub fn run_streams(
    platform: &PlatformSpec,
    streams: Vec<Box<dyn OpStream>>,
    backend: &mut dyn MemoryBackend,
    max_cycles: u64,
) -> RunReport {
    let mut engine = Engine::from_boxed(platform.cpu_config(), streams);
    engine.run(backend, StopCondition::AllStreamsDone, max_cycles)
}

/// Runs a validation workload and returns its IPC.
pub fn workload_ipc(
    workload: ValidationWorkload,
    platform: &PlatformSpec,
    backend: &mut dyn MemoryBackend,
    fidelity: Fidelity,
) -> f64 {
    let max_cycles = match fidelity {
        Fidelity::Quick => 3_000_000,
        Fidelity::Full => 60_000_000,
    };
    run_streams(
        platform,
        workload.streams(platform, fidelity),
        backend,
        max_cycles,
    )
    .ipc()
}

/// Absolute relative error of `simulated` IPC with respect to `reference` IPC, in percent.
pub fn ipc_error_percent(simulated: f64, reference: f64) -> f64 {
    if reference.abs() < 1e-12 {
        return 0.0;
    }
    ((simulated - reference) / reference).abs() * 100.0
}

/// Shrinks a platform's core count for quick runs so unit tests stay fast while the full runs
/// keep the paper's configuration.
pub fn scaled_platform(platform: &PlatformSpec, fidelity: Fidelity) -> PlatformSpec {
    match fidelity {
        Fidelity::Full => platform.clone(),
        Fidelity::Quick => {
            let mut p = platform.clone();
            p.cores = p.cores.min(8);
            p.cpu = p.cpu_config_with_cores(p.cores);
            p.channels = p.channels.clamp(1, 4);
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mess_platforms::PlatformId;

    #[test]
    fn every_validation_workload_builds_streams_for_every_core() {
        let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), Fidelity::Quick);
        for w in ValidationWorkload::ALL {
            let streams = w.streams(&platform, Fidelity::Quick);
            assert_eq!(streams.len(), platform.cores as usize, "{}", w.label());
        }
    }

    #[test]
    fn ipc_error_is_symmetric_in_sign_and_zero_for_exact_match() {
        assert_eq!(ipc_error_percent(1.0, 1.0), 0.0);
        assert!((ipc_error_percent(0.5, 1.0) - 50.0).abs() < 1e-9);
        assert!((ipc_error_percent(1.5, 1.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_platform_reduces_cores_only_in_quick_mode() {
        let spec = PlatformId::AmdZen2.spec();
        assert_eq!(scaled_platform(&spec, Fidelity::Full).cores, 64);
        let quick = scaled_platform(&spec, Fidelity::Quick);
        assert!(quick.cores <= 8);
        assert_eq!(quick.cpu.cores, quick.cores);
    }

    #[test]
    fn quick_mode_channel_scaling_never_produces_zero_channels() {
        for id in PlatformId::ALL {
            let quick = scaled_platform(&id.spec(), Fidelity::Quick);
            assert!(
                (1..=4).contains(&quick.channels),
                "{id:?}: quick-mode channels must stay in 1..=4, got {}",
                quick.channels
            );
        }
        // Even a degenerate zero-channel spec must scale to at least one channel.
        let mut zero = PlatformId::IntelSkylake.spec();
        zero.channels = 0;
        assert_eq!(scaled_platform(&zero, Fidelity::Quick).channels, 1);
    }
}
