//! Shared experiment plumbing (re-exported from the scenario engine).
//!
//! The helpers that every driver used to need — workload construction, IPC measurement,
//! quick-fidelity platform scaling — moved into `mess_scenario::engine` with the
//! declarative scenario refactor. [`ValidationWorkload`] is now a thin name over
//! [`mess_scenario::WorkloadSpec`]: its `streams` build the same op streams as before, but
//! through the one spec-resolution pipeline every scenario file uses.

pub use mess_scenario::engine::{
    ipc_error_percent, run_streams, scaled_platform, spec_workload_ipc, workload_ipc,
    ValidationWorkload,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Fidelity;
    use mess_platforms::PlatformId;

    #[test]
    fn every_validation_workload_builds_streams_for_every_core() {
        let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), Fidelity::Quick);
        for w in ValidationWorkload::ALL {
            let streams = w.streams(&platform, Fidelity::Quick);
            assert_eq!(streams.len(), platform.cores as usize, "{}", w.label());
        }
    }

    #[test]
    fn ipc_error_is_symmetric_in_sign_and_zero_for_exact_match() {
        assert_eq!(ipc_error_percent(1.0, 1.0), 0.0);
        assert!((ipc_error_percent(0.5, 1.0) - 50.0).abs() < 1e-9);
        assert!((ipc_error_percent(1.5, 1.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_platform_reduces_cores_only_in_quick_mode() {
        let spec = PlatformId::AmdZen2.spec();
        assert_eq!(scaled_platform(&spec, Fidelity::Full).cores, 64);
        let quick = scaled_platform(&spec, Fidelity::Quick);
        assert!(quick.cores <= 8);
        assert_eq!(quick.cpu.cores, quick.cores);
    }

    #[test]
    fn quick_mode_channel_scaling_never_produces_zero_channels() {
        for id in PlatformId::ALL {
            let quick = scaled_platform(&id.spec(), Fidelity::Quick);
            assert!(
                (1..=4).contains(&quick.channels),
                "{id:?}: quick-mode channels must stay in 1..=4, got {}",
                quick.channels
            );
        }
        // Even a degenerate zero-channel spec must scale to at least one channel.
        let mut zero = PlatformId::IntelSkylake.spec();
        zero.channels = 0;
        assert_eq!(scaled_platform(&zero, Fidelity::Quick).channels, 1);
    }
}
