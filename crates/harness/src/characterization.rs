//! Experiments of paper §III: Mess characterization of the actual platforms.
//!
//! * `fig2` — the annotated Skylake curve family (unloaded latency, saturated-bandwidth range,
//!   maximum-latency range, STREAM reference bandwidths);
//! * `fig3` / `table1` — the curve families and quantitative metrics of the eight Table I
//!   platforms, with the paper's measured values side by side.

use crate::report::{ExperimentReport, Fidelity};
use crate::runner::{run_streams, scaled_platform};
use mess_bench::sweep::{characterize_with, Characterization, SweepConfig};
use mess_core::metrics::FamilyMetrics;
use mess_exec::ExecConfig;
use mess_platforms::{PlatformId, PlatformSpec};
use mess_workloads::stream::{StreamConfig, StreamKernel};

fn sweep_for(fidelity: Fidelity) -> SweepConfig {
    match fidelity {
        Fidelity::Quick => SweepConfig {
            store_mixes: vec![0.0, 1.0],
            pause_levels: vec![200, 40, 8, 0],
            chase_loads: 150,
            max_cycles_per_point: 800_000,
        },
        Fidelity::Full => SweepConfig::full(),
    }
}

/// Characterizes one platform's detailed-DRAM reference memory with the Mess benchmark on
/// `exec.resolved_threads()` workers (each sweep point builds a private DRAM system).
pub fn characterize_platform(
    platform: &PlatformSpec,
    fidelity: Fidelity,
    exec: &ExecConfig,
) -> Characterization {
    characterize_with(
        platform.name,
        &platform.cpu_config(),
        || platform.build_dram(),
        &sweep_for(fidelity),
        exec,
    )
    .expect("the sweep configuration is valid")
}

/// Measures the STREAM kernels' sustained bandwidth on the platform (the dashed reference
/// lines of Figs. 2 and 3), using STREAM's own application-level accounting. The four
/// kernels run in parallel, each against a private DRAM system.
pub fn stream_bandwidths(
    platform: &PlatformSpec,
    fidelity: Fidelity,
    exec: &ExecConfig,
) -> Vec<(StreamKernel, f64)> {
    let cpu = platform.cpu_config();
    let scale = match fidelity {
        Fidelity::Quick => 2,
        Fidelity::Full => 6,
    };
    mess_exec::par_map_with(exec, StreamKernel::ALL.to_vec(), |_, kernel| {
        let config = StreamConfig {
            kernel,
            array_bytes: (cpu.llc.capacity_bytes * scale).max(1 << 22),
            iterations: 1,
            cores: cpu.cores,
        };
        let mut dram = platform.build_dram();
        let report = run_streams(platform, config.streams(), &mut dram, 80_000_000);
        let gbs = config.stream_bytes() as f64 / report.elapsed().as_ns();
        (kernel, gbs)
    })
}

/// Paper Fig. 2: the Skylake bandwidth–latency family with its headline metrics.
pub fn fig2(fidelity: Fidelity) -> ExperimentReport {
    let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), fidelity);
    // One platform: parallelism lives inside the sweep (one worker per sweep point).
    let c = characterize_platform(&platform, fidelity, &ExecConfig::default());
    let metrics = FamilyMetrics::compute(&c.family, platform.theoretical_bandwidth());

    let mut report = ExperimentReport::new(
        "fig2",
        "Mess bandwidth-latency curves of the Skylake reference platform",
        &["read_percent", "bandwidth_gbs", "latency_ns"],
    );
    for (pct, bw, lat) in c.family.to_rows() {
        report.push_row(vec![
            pct.to_string(),
            format!("{bw:.2}"),
            format!("{lat:.1}"),
        ]);
    }
    report.note(metrics.table_row());
    for (kernel, gbs) in stream_bandwidths(&platform, fidelity, &ExecConfig::default()) {
        report.note(format!(
            "STREAM {kernel}: {gbs:.1} GB/s (application-level)"
        ));
    }
    if let Some(r) = &platform.reference {
        report.note(format!(
            "paper reference: unloaded {} ns, saturated {}-{}% of theoretical, max latency {}-{} ns",
            r.unloaded_latency_ns,
            r.saturated_bw_low_pct,
            r.saturated_bw_high_pct,
            r.max_latency_low_ns,
            r.max_latency_high_ns
        ));
    }
    report
}

/// Paper Fig. 3 and Table I: metrics of every platform under study.
pub fn table1(fidelity: Fidelity) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table1",
        "Quantitative memory performance comparison (paper Table I / Fig. 3)",
        &[
            "platform",
            "theoretical_gbs",
            "unloaded_ns",
            "unloaded_ns_paper",
            "sat_bw_low_pct",
            "sat_bw_high_pct",
            "sat_bw_paper",
            "max_lat_range_ns",
            "max_lat_paper",
            "stream_pct",
            "stream_paper",
        ],
    );
    let platforms: Vec<PlatformId> = match fidelity {
        Fidelity::Quick => vec![PlatformId::IntelSkylake, PlatformId::AmazonGraviton3],
        Fidelity::Full => PlatformId::TABLE_ONE.to_vec(),
    };
    // One leg per platform; rows come back in platform order. With fewer platforms than
    // pool workers the legs run sequentially and the parallelism moves into each leg's
    // sweep instead (for_fanout) — nested calls on a pool worker never fan out, so the two
    // schedules produce identical rows.
    let rows = mess_exec::par_map_with(
        &ExecConfig::for_fanout(platforms.len()),
        platforms,
        |_, id| {
            let platform = scaled_platform(&id.spec(), fidelity);
            let theoretical = platform.theoretical_bandwidth();
            let c = characterize_platform(&platform, fidelity, &ExecConfig::default());
            let m = FamilyMetrics::compute(&c.family, theoretical);
            let streams = stream_bandwidths(&platform, fidelity, &ExecConfig::default());
            let stream_low = streams.iter().map(|(_, b)| *b).fold(f64::MAX, f64::min);
            let stream_high = streams.iter().map(|(_, b)| *b).fold(0.0, f64::max);
            let r = platform.reference;
            vec![
                id.key().to_string(),
                format!("{:.0}", theoretical.as_gbs()),
                format!("{:.0}", m.unloaded_latency.as_ns()),
                r.map(|r| format!("{:.0}", r.unloaded_latency_ns))
                    .unwrap_or_default(),
                format!("{:.0}", m.saturated_bandwidth_range.low_fraction * 100.0),
                format!("{:.0}", m.saturated_bandwidth_range.high_fraction * 100.0),
                r.map(|r| {
                    format!(
                        "{:.0}-{:.0}",
                        r.saturated_bw_low_pct, r.saturated_bw_high_pct
                    )
                })
                .unwrap_or_default(),
                format!(
                    "{:.0}-{:.0}",
                    m.max_latency_range.low.as_ns(),
                    m.max_latency_range.high.as_ns()
                ),
                r.map(|r| format!("{:.0}-{:.0}", r.max_latency_low_ns, r.max_latency_high_ns))
                    .unwrap_or_default(),
                format!(
                    "{:.0}-{:.0}",
                    stream_low / theoretical.as_gbs() * 100.0,
                    stream_high / theoretical.as_gbs() * 100.0
                ),
                r.map(|r| format!("{:.0}-{:.0}", r.stream_low_pct, r.stream_high_pct))
                    .unwrap_or_default(),
            ]
        },
    );
    report.push_rows(rows);
    report.note(
        "Quick fidelity characterizes a scaled-down platform (fewer cores/channels); \
         full fidelity runs the paper configuration.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mess_types::RwRatio;

    #[test]
    fn skylake_characterization_produces_rising_write_sensitive_curves() {
        let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), Fidelity::Quick);
        let c = characterize_platform(&platform, Fidelity::Quick, &ExecConfig::default());
        assert_eq!(c.family.len(), 2);
        let reads = c.family.closest_curve(RwRatio::ALL_READS);
        assert!(reads.max_latency() > reads.unloaded_latency());
        // Write-heavy traffic must achieve less bandwidth than pure reads (paper §II-C).
        let writes = c.family.closest_curve(RwRatio::HALF);
        assert!(writes.max_bandwidth() < reads.max_bandwidth());
        // And the whole family stays below the theoretical peak.
        assert!(c.family.max_bandwidth().as_gbs() <= platform.theoretical_bandwidth().as_gbs());
    }

    #[test]
    fn fig2_report_has_points_and_metrics() {
        let r = fig2(Fidelity::Quick);
        assert!(r.rows.len() >= 8);
        assert!(r.notes.iter().any(|n| n.contains("STREAM")));
        assert!(r.notes.iter().any(|n| n.contains("paper reference")));
    }

    #[test]
    fn table1_quick_covers_two_platforms() {
        let r = table1(Fidelity::Quick);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.headers.len(), r.rows[0].len());
    }
}
