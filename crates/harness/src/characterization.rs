//! Experiments of paper §III: Mess characterization of the actual platforms.
//!
//! * `fig2` — the annotated Skylake curve family (unloaded latency, saturated-bandwidth range,
//!   maximum-latency range, STREAM reference bandwidths);
//! * `fig3` / `table1` — the curve families and quantitative metrics of the eight Table I
//!   platforms, with the paper's measured values side by side.
//!
//! Both drivers are spec-built: they run the registered builtin scenario through
//! [`mess_scenario::run_scenario`] — `mess-harness --dump-spec fig2` prints the exact
//! experiment definition they execute.

use crate::report::{ExperimentReport, Fidelity};

pub use mess_scenario::engine::stream_bandwidths;

/// Paper Fig. 2: the Skylake bandwidth–latency family with its headline metrics.
pub fn fig2(fidelity: Fidelity) -> ExperimentReport {
    mess_scenario::run_builtin("fig2", fidelity).expect("fig2 is a builtin scenario")
}

/// Paper Fig. 3 and Table I: metrics of every platform under study.
pub fn table1(fidelity: Fidelity) -> ExperimentReport {
    mess_scenario::run_builtin("table1", fidelity).expect("table1 is a builtin scenario")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::scaled_platform;
    use mess_bench::sweep::{characterize_with, SweepConfig};
    use mess_exec::ExecConfig;
    use mess_platforms::PlatformId;
    use mess_types::RwRatio;

    #[test]
    fn skylake_characterization_produces_rising_write_sensitive_curves() {
        let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), Fidelity::Quick);
        // The same sweep the fig2 builtin scenario uses at quick fidelity.
        let sweep = SweepConfig {
            store_mixes: vec![0.0, 1.0],
            pause_levels: vec![200, 40, 8, 0],
            chase_loads: 150,
            max_cycles_per_point: 800_000,
        };
        let c = characterize_with(
            platform.name,
            &platform.cpu_config(),
            || platform.build_dram(),
            &sweep,
            &ExecConfig::default(),
        )
        .expect("sweep is valid");
        assert_eq!(c.family.len(), 2);
        let reads = c.family.closest_curve(RwRatio::ALL_READS);
        assert!(reads.max_latency() > reads.unloaded_latency());
        // Write-heavy traffic must achieve less bandwidth than pure reads (paper §II-C).
        let writes = c.family.closest_curve(RwRatio::HALF);
        assert!(writes.max_bandwidth() < reads.max_bandwidth());
        // And the whole family stays below the theoretical peak.
        assert!(c.family.max_bandwidth().as_gbs() <= platform.theoretical_bandwidth().as_gbs());
    }

    #[test]
    fn fig2_report_has_points_and_metrics() {
        let r = fig2(Fidelity::Quick);
        assert!(r.rows.len() >= 8);
        assert!(r.notes.iter().any(|n| n.contains("STREAM")));
        assert!(r.notes.iter().any(|n| n.contains("paper reference")));
    }

    #[test]
    fn table1_quick_covers_two_platforms() {
        let r = table1(Fidelity::Quick);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.headers.len(), r.rows[0].len());
    }
}
