//! Experiment drivers that regenerate every table and figure of the Mess paper.
//!
//! Since the declarative scenario refactor every driver is a thin wrapper: it runs its
//! registered `mess-scenario` builtin spec through the single `run_scenario` engine
//! (characterize → simulate → report). The same pipeline executes arbitrary scenario and
//! campaign *files* (`--scenario` / `--campaign`), and `--dump-spec <id>` exports any
//! builtin as editable JSON — a new experiment is a JSON file, not a new driver.
//!
//! Each driver returns an [`ExperimentReport`] (a table plus notes) at either
//! [`Fidelity::Quick`] — used by the test suite — or [`Fidelity::Full`] — used by the
//! `mess-harness` binary and the Criterion benches to regenerate the paper's results:
//!
//! | experiment | paper content | module |
//! |---|---|---|
//! | `fig2` | Skylake curve family + headline metrics | [`characterization`] |
//! | `fig3` / `table1` | the eight Table I platforms | [`characterization`] |
//! | `fig4` | Graviton 3 vs gem5 memory models | [`simulators`] |
//! | `fig5` | Skylake vs ZSim memory models | [`simulators`] |
//! | `fig6` | trace-driven DRAMsim3/Ramulator/Ramulator2 stand-ins | [`simulators`] |
//! | `fig7` | row-buffer statistics | [`simulators`] |
//! | `fig10` / `fig12` | Mess-simulator curves (ZSim- and gem5-style hosts) | [`mess_sim`] |
//! | `fig11` / `fig13` | IPC error of every memory model | [`mess_sim`] |
//! | `fig14` | CXL expander curves across hosts | [`cxl`] |
//! | `fig17` / `fig18` | CXL vs remote-socket emulation | [`cxl`] |
//! | `fig15` / `fig16` | HPCG application profiling | [`profiling`] |

#![warn(missing_docs)]

pub mod characterization;
pub mod cxl;
pub mod mess_sim;
pub mod output;
pub mod profiling;
pub mod report;
pub mod runner;
pub mod simulators;

pub use mess_scenario::{builtin_spec, BuiltinScenario, CurveSet, BUILTINS};
pub use output::{write_curve_sets, write_reports};
pub use report::{CampaignSummary, ExperimentReport, Fidelity};

/// The signature every experiment driver shares.
pub type ExperimentDriver = fn(Fidelity) -> ExperimentReport;

/// One experiment driver: its canonical identifier and the function that runs it.
///
/// This table is the single source of truth: [`EXPERIMENTS`] is derived from it and
/// [`run_experiment`] dispatches through it, so an id can never be listed without a driver
/// (or vice versa). Every driver executes through the spec pipeline
/// ([`mess_scenario::run_builtin`]).
pub const DRIVERS: [(&str, ExperimentDriver); 13] = [
    ("fig2", characterization::fig2),
    ("table1", characterization::table1),
    ("fig4", simulators::fig4),
    ("fig5", simulators::fig5),
    ("fig6", simulators::fig6),
    ("fig7", simulators::fig7),
    ("fig10", mess_sim::fig10),
    ("fig11", mess_sim::fig11),
    ("fig12", mess_sim::fig12),
    ("fig13", mess_sim::fig13),
    ("fig14", cxl::fig14),
    ("fig15", profiling::fig15), // fig15 also covers fig16
    ("fig18", cxl::fig18),       // the CXL-vs-remote-socket comparison covers fig17 and fig18
];

/// Every experiment identifier accepted by [`run_experiment`], in paper order (derived from
/// [`DRIVERS`]).
pub const EXPERIMENTS: [&str; 13] = experiment_ids();

const fn experiment_ids() -> [&'static str; 13] {
    let mut ids = [""; 13];
    let mut i = 0;
    while i < DRIVERS.len() {
        ids[i] = DRIVERS[i].0;
        i += 1;
    }
    ids
}

/// Resolves `id` to its canonical [`DRIVERS`] identifier, handling the paper's aliases
/// (`fig3` = `table1`, `fig16` = `fig15`, `fig17` = `fig18`). Returns `None` for unknown
/// identifiers.
pub fn canonical_experiment_id(id: &str) -> Option<&'static str> {
    let canonical = match id {
        "fig3" => "table1",
        "fig16" => "fig15",
        "fig17" => "fig18",
        other => other,
    };
    DRIVERS.iter().map(|(c, _)| *c).find(|c| *c == canonical)
}

/// The builtin-registry entry (description, paper anchor, spec builder) behind `id`,
/// accepting the same aliases as [`run_experiment`].
pub fn experiment_info(id: &str) -> Option<&'static BuiltinScenario> {
    mess_scenario::builtin(canonical_experiment_id(id)?)
}

/// Runs the experiment named `id` (see [`EXPERIMENTS`], plus the aliases handled by
/// [`canonical_experiment_id`]).
///
/// Returns `None` for an unknown identifier.
pub fn run_experiment(id: &str, fidelity: Fidelity) -> Option<ExperimentReport> {
    let canonical = canonical_experiment_id(id)?;
    let (_, driver) = DRIVERS.iter().find(|(c, _)| *c == canonical)?;
    Some(driver(fidelity))
}

/// Runs several experiments as one batch through the [`mess_exec::JobGraph`] runner: one job
/// per experiment, executed concurrently, with `progress` narrating job starts and finishes.
/// Reports are returned in the order of `ids`, which must all be known (checked up front).
///
/// This is the engine behind `mess-harness --experiment all`: experiments are independent,
/// so on a multi-core host the campaign finishes in roughly the time of its slowest figure
/// instead of the sum of all of them. In this mode parallelism lives at the experiment
/// level only — a driver running on a job-runner worker executes its internal sweeps
/// inline, because nested `mess-exec` pools never fan out a second level (the configured
/// worker count caps the process).
///
/// Returns `None` if any id is unknown.
pub fn run_experiments(
    ids: &[&str],
    fidelity: Fidelity,
    progress: impl FnMut(mess_exec::JobEvent<'_>),
) -> Option<Vec<ExperimentReport>> {
    let mut graph = mess_exec::JobGraph::new();
    for id in ids {
        let canonical = canonical_experiment_id(id)?;
        let (_, driver) = DRIVERS.iter().find(|(c, _)| *c == canonical)?;
        graph.add_job(canonical, &[], move || driver(fidelity));
    }
    Some(
        graph
            .run(&mess_exec::ExecConfig::default(), progress)
            .expect("experiment jobs declare no dependencies"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_id_resolves_through_the_driver_table() {
        // EXPERIMENTS is derived from DRIVERS, so every listed id must resolve to itself
        // and carry a driver — no second hardcoded copy to drift out of sync.
        for id in EXPERIMENTS {
            assert_eq!(
                canonical_experiment_id(id),
                Some(id),
                "unknown experiment id {id}"
            );
        }
        assert!(run_experiment("not-an-experiment", Fidelity::Quick).is_none());
        assert_eq!(canonical_experiment_id("bogus"), None);
    }

    #[test]
    fn every_driver_id_is_a_registered_builtin_scenario() {
        // The DRIVERS table and the scenario builtin registry must stay in lockstep: every
        // driver dispatches to `run_builtin`, so a missing registration would panic at run
        // time — catch it here instead.
        for id in EXPERIMENTS {
            let info = experiment_info(id)
                .unwrap_or_else(|| panic!("{id} has a driver but no builtin scenario"));
            assert_eq!(info.id, id);
        }
        assert_eq!(BUILTINS.len(), DRIVERS.len());
        // Aliases resolve to registry entries too.
        assert_eq!(experiment_info("fig3").unwrap().id, "table1");
        assert!(experiment_info("fig99").is_none());
    }

    #[test]
    fn aliases_resolve_to_canonical_drivers() {
        assert_eq!(canonical_experiment_id("fig3"), Some("table1"));
        assert_eq!(canonical_experiment_id("fig16"), Some("fig15"));
        assert_eq!(canonical_experiment_id("fig17"), Some("fig18"));
        assert_eq!(canonical_experiment_id("fig18"), Some("fig18"));
    }

    #[test]
    fn one_cheap_experiment_actually_runs_at_quick_fidelity() {
        // Executing all thirteen drivers is the integration suite's job; here one cheap
        // driver proves the table dispatch end to end.
        let report = run_experiment("fig7", Fidelity::Quick).expect("fig7 is listed");
        assert!(!report.rows.is_empty());
    }

    #[test]
    fn run_experiments_batches_through_the_job_runner() {
        // Two cheap drivers (one via its alias) through the `--experiment all` machinery:
        // reports in request order under canonical ids, one started + one finished progress
        // event per job.
        let mut started = Vec::new();
        let mut finished = Vec::new();
        let reports = run_experiments(&["fig7", "fig16"], Fidelity::Quick, |event| match event {
            mess_exec::JobEvent::Started { name, .. } => started.push(name.to_string()),
            mess_exec::JobEvent::Finished {
                name,
                completed,
                total,
                ..
            } => {
                assert_eq!(total, 2);
                assert!(completed >= 1);
                finished.push(name.to_string());
            }
        })
        .expect("both ids are known");
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].id, "fig7");
        assert_eq!(reports[1].id, "fig15", "the fig16 alias resolves to fig15");
        assert!(!reports[0].rows.is_empty() && !reports[1].rows.is_empty());
        let sorted = |mut v: Vec<String>| {
            v.sort();
            v
        };
        assert_eq!(sorted(started.clone()), vec!["fig15", "fig7"]);
        assert_eq!(sorted(finished), sorted(started));
        // An unknown id anywhere in the batch rejects the whole request.
        assert!(run_experiments(&["fig7", "not-real"], Fidelity::Quick, |_| {}).is_none());
    }
}
