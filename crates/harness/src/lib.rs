//! Experiment drivers that regenerate every table and figure of the Mess paper.
//!
//! Each module maps to one group of figures of the evaluation; each driver returns an
//! [`ExperimentReport`] (a table plus notes) at either [`Fidelity::Quick`] — used by the test
//! suite — or [`Fidelity::Full`] — used by the `mess-harness` binary and the Criterion
//! benches to regenerate the paper's results:
//!
//! | experiment | paper content | module |
//! |---|---|---|
//! | `fig2` | Skylake curve family + headline metrics | [`characterization`] |
//! | `fig3` / `table1` | the eight Table I platforms | [`characterization`] |
//! | `fig4` | Graviton 3 vs gem5 memory models | [`simulators`] |
//! | `fig5` | Skylake vs ZSim memory models | [`simulators`] |
//! | `fig6` | trace-driven DRAMsim3/Ramulator/Ramulator2 stand-ins | [`simulators`] |
//! | `fig7` | row-buffer statistics | [`simulators`] |
//! | `fig10` / `fig12` | Mess-simulator curves (ZSim- and gem5-style hosts) | [`mess_sim`] |
//! | `fig11` / `fig13` | IPC error of every memory model | [`mess_sim`] |
//! | `fig14` | CXL expander curves across hosts | [`cxl`] |
//! | `fig17` / `fig18` | CXL vs remote-socket emulation | [`cxl`] |
//! | `fig15` / `fig16` | HPCG application profiling | [`profiling`] |

#![warn(missing_docs)]

pub mod characterization;
pub mod cxl;
pub mod mess_sim;
pub mod profiling;
pub mod report;
pub mod runner;
pub mod simulators;

pub use report::{ExperimentReport, Fidelity};

/// Every experiment identifier accepted by [`run_experiment`], in paper order.
pub const EXPERIMENTS: [&str; 12] = [
    "fig2", "table1", "fig4", "fig5", "fig6", "fig7", "fig10", "fig11", "fig12", "fig13",
    "fig14", "fig15", // fig15 also covers fig16; fig14's companion fig17/18 runs as fig18
];

/// Runs the experiment named `id` (see [`EXPERIMENTS`], plus `fig3` as an alias of `table1`
/// and `fig16`/`fig17`/`fig18` as aliases of their combined drivers).
///
/// Returns `None` for an unknown identifier.
pub fn run_experiment(id: &str, fidelity: Fidelity) -> Option<ExperimentReport> {
    Some(match id {
        "fig2" => characterization::fig2(fidelity),
        "fig3" | "table1" => characterization::table1(fidelity),
        "fig4" => simulators::fig4(fidelity),
        "fig5" => simulators::fig5(fidelity),
        "fig6" => simulators::fig6(fidelity),
        "fig7" => simulators::fig7(fidelity),
        "fig10" => mess_sim::fig10(fidelity),
        "fig11" => mess_sim::fig11(fidelity),
        "fig12" => mess_sim::fig12(fidelity),
        "fig13" => mess_sim::fig13(fidelity),
        "fig14" => cxl::fig14(fidelity),
        "fig15" | "fig16" => profiling::fig15(fidelity),
        "fig17" | "fig18" => cxl::fig18(fidelity),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_id_resolves() {
        for id in EXPERIMENTS {
            // Only resolve the driver; running them all at quick fidelity is covered by the
            // per-module tests and the integration tests.
            assert!(
                ["fig2", "table1", "fig4", "fig5", "fig6", "fig7", "fig10", "fig11", "fig12",
                 "fig13", "fig14", "fig15"]
                .contains(&id),
                "unknown experiment id {id}"
            );
        }
        assert!(run_experiment("not-an-experiment", Fidelity::Quick).is_none());
    }
}
