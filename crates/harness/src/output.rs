//! File output for experiment runs (`mess-harness --out <dir>` and `--curves-out <dir>`).
//!
//! The implementation lives in [`mess_scenario::output`] so the `mess-serve` daemon writes
//! its cached artifacts through exactly the code path the CLI uses — byte-identical files,
//! same collision-safe naming. This module re-exports it for the harness's historical
//! callers.

pub use mess_scenario::output::{write_curve_sets, write_reports};
