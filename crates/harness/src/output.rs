//! File output for experiment runs (`mess-harness --out <dir>` and `--curves-out <dir>`).
//!
//! Each report becomes `<dir>/<id>.csv` (the same CSV `--csv` prints) and the whole batch is
//! indexed by `<dir>/campaign-summary.json` — a [`CampaignSummary`] carrying every
//! experiment's title, row count and notes, so downstream tooling can discover the CSVs
//! without parsing them. Curve artifacts measured by a run are written by
//! [`write_curve_sets`] as one `CurveSet` JSON file each, named from their provenance.

use crate::report::{CampaignSummary, ExperimentReport};
use mess_scenario::CurveSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes one CSV file per report plus a `campaign-summary.json` index into `dir` (created
/// if missing). Returns the paths written, the summary last.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, disk full, ...).
pub fn write_reports(
    dir: &Path,
    campaign_name: &str,
    reports: &[ExperimentReport],
) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::with_capacity(reports.len() + 1);
    for report in reports {
        let path = dir.join(format!("{}.csv", report.id));
        fs::write(&path, report.to_csv())?;
        written.push(path);
    }
    let summary_path = dir.join("campaign-summary.json");
    let summary = CampaignSummary::new(campaign_name, reports);
    fs::write(&summary_path, summary.to_json() + "\n")?;
    written.push(summary_path);
    Ok(written)
}

/// Reduces a provenance string to a file-name-safe slug: lowercase, every run of
/// non-alphanumeric characters collapsed to one `-`.
fn slug(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// Writes every curve artifact into `dir` (created if missing) as
/// `<scenario>-<platform>-<model>.json` (slugged from the artifact's provenance, with a
/// `-2`, `-3`, ... suffix on collision). Returns the paths written, in artifact order —
/// deterministic, so CI and scripts can name the files in advance.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, disk full, ...).
pub fn write_curve_sets(dir: &Path, sets: &[CurveSet]) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut written: Vec<PathBuf> = Vec::with_capacity(sets.len());
    let mut used: Vec<String> = Vec::with_capacity(sets.len());
    for set in sets {
        let p = set.provenance();
        let base = slug(&format!("{}-{}-{}", p.scenario, p.platform, p.model));
        let mut name = format!("{base}.json");
        let mut n = 2;
        while used.contains(&name) {
            name = format!("{base}-{n}.json");
            n += 1;
        }
        used.push(name.clone());
        let path = dir.join(&name);
        set.save(&path).map_err(io::Error::other)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CampaignSummary;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mess-harness-output-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_one_csv_per_report_and_a_summary_index() {
        let dir = temp_dir("basic");
        let mut a = ExperimentReport::new("fig0", "first", &["x", "y"]);
        a.push_row(vec!["1".into(), "2".into()]);
        a.note("headline");
        let mut b = ExperimentReport::new("fig1", "second", &["z"]);
        b.push_row(vec!["3".into()]);

        let written = write_reports(&dir, "demo", &[a.clone(), b]).unwrap();
        assert_eq!(written.len(), 3);
        assert_eq!(written[0].file_name().unwrap(), "fig0.csv");
        assert_eq!(written[2].file_name().unwrap(), "campaign-summary.json");

        let csv = fs::read_to_string(&written[0]).unwrap();
        assert_eq!(csv, a.to_csv());
        let summary: CampaignSummary =
            serde_json::from_str(&fs::read_to_string(&written[2]).unwrap()).unwrap();
        assert_eq!(summary.name, "demo");
        assert_eq!(summary.experiments.len(), 2);
        assert_eq!(summary.experiments[0].rows, 1);
        assert_eq!(summary.experiments[0].notes, vec!["headline".to_string()]);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn curve_sets_get_deterministic_provenance_named_files() {
        use mess_scenario::CurveSetProvenance;
        let family = mess_platforms::PlatformId::IntelSkylake
            .spec()
            .reference_family();
        let set = |scenario: &str| {
            CurveSet::new(
                family.clone(),
                CurveSetProvenance::new("skylake", "detailed-dram", "test sweep", scenario),
            )
            .unwrap()
        };
        let dir = temp_dir("curves");
        // Two identical provenances collide on the base name and get a numeric suffix.
        let written = write_curve_sets(&dir, &[set("My Run"), set("fig2"), set("My Run")]).unwrap();
        let names: Vec<_> = written
            .iter()
            .map(|p| p.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![
                "my-run-skylake-detailed-dram.json",
                "fig2-skylake-detailed-dram.json",
                "my-run-skylake-detailed-dram-2.json",
            ]
        );
        // Every written file loads back through the strict loader, byte-stable.
        for path in &written {
            let back = CurveSet::load(path).unwrap();
            assert_eq!(back.to_json() + "\n", fs::read_to_string(path).unwrap());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn creates_nested_output_directories() {
        let dir = temp_dir("nested").join("a/b");
        let report = ExperimentReport::new("fig9", "nested", &["c"]);
        let written = write_reports(&dir, "nested", &[report]).unwrap();
        assert!(written.iter().all(|p| p.exists()));
        fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).unwrap();
    }
}
