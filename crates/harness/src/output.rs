//! File output for experiment runs (`mess-harness --out <dir>`).
//!
//! Each report becomes `<dir>/<id>.csv` (the same CSV `--csv` prints) and the whole batch is
//! indexed by `<dir>/campaign-summary.json` — a [`CampaignSummary`] carrying every
//! experiment's title, row count and notes, so downstream tooling can discover the CSVs
//! without parsing them.

use crate::report::{CampaignSummary, ExperimentReport};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes one CSV file per report plus a `campaign-summary.json` index into `dir` (created
/// if missing). Returns the paths written, the summary last.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, disk full, ...).
pub fn write_reports(
    dir: &Path,
    campaign_name: &str,
    reports: &[ExperimentReport],
) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::with_capacity(reports.len() + 1);
    for report in reports {
        let path = dir.join(format!("{}.csv", report.id));
        fs::write(&path, report.to_csv())?;
        written.push(path);
    }
    let summary_path = dir.join("campaign-summary.json");
    let summary = CampaignSummary::new(campaign_name, reports);
    fs::write(&summary_path, summary.to_json() + "\n")?;
    written.push(summary_path);
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CampaignSummary;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mess-harness-output-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_one_csv_per_report_and_a_summary_index() {
        let dir = temp_dir("basic");
        let mut a = ExperimentReport::new("fig0", "first", &["x", "y"]);
        a.push_row(vec!["1".into(), "2".into()]);
        a.note("headline");
        let mut b = ExperimentReport::new("fig1", "second", &["z"]);
        b.push_row(vec!["3".into()]);

        let written = write_reports(&dir, "demo", &[a.clone(), b]).unwrap();
        assert_eq!(written.len(), 3);
        assert_eq!(written[0].file_name().unwrap(), "fig0.csv");
        assert_eq!(written[2].file_name().unwrap(), "campaign-summary.json");

        let csv = fs::read_to_string(&written[0]).unwrap();
        assert_eq!(csv, a.to_csv());
        let summary: CampaignSummary =
            serde_json::from_str(&fs::read_to_string(&written[2]).unwrap()).unwrap();
        assert_eq!(summary.name, "demo");
        assert_eq!(summary.experiments.len(), 2);
        assert_eq!(summary.experiments[0].rows, 1);
        assert_eq!(summary.experiments[0].notes, vec!["headline".to_string()]);

        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn creates_nested_output_directories() {
        let dir = temp_dir("nested").join("a/b");
        let report = ExperimentReport::new("fig9", "nested", &["c"]);
        let written = write_reports(&dir, "nested", &[report]).unwrap();
        assert!(written.iter().all(|p| p.exists()));
        fs::remove_dir_all(dir.parent().unwrap().parent().unwrap()).unwrap();
    }
}
