//! The observability layer's hard contract: it is *write-only* with respect to results.
//!
//! Reports, `CurveSet` artifact bytes, and `spec_digest()` cache keys must be
//! byte-identical whether metrics/tracing are disabled or enabled, at any worker count.
//! One test (this binary runs nothing else, so the process-global enable flag and trace
//! collector are raced by nobody) runs a builtin suite three ways — disabled @ 1 worker,
//! enabled+tracing @ 1 worker, enabled+tracing @ 8 workers — and compares everything.

use mess_harness::{Fidelity, EXPERIMENTS};
use mess_scenario::{ScenarioOptions, TraceProgress};

/// Everything a run produces that downstream consumers may hash, cache, or diff.
#[derive(Debug, PartialEq)]
struct SuiteOutput {
    /// Per scenario: (id, spec digest, report CSV).
    reports: Vec<(String, String, String)>,
    /// Per curve artifact: serialized `CurveSet` bytes, in production order.
    artifacts: Vec<String>,
}

fn run_suite(ids: &[&str], threads: usize, observed: bool) -> SuiteOutput {
    mess_exec::set_default_threads(threads);
    let sink = TraceProgress::new();
    let options = ScenarioOptions::default();
    let mut reports = Vec::new();
    let mut artifacts = Vec::new();
    for id in ids {
        let spec = mess_scenario::builtin_spec(id, Fidelity::Quick).expect("builtin id");
        let outcome = if observed {
            mess_scenario::run_scenario_observed(&spec, &options, &sink)
        } else {
            mess_scenario::run_scenario_with(&spec, &options)
        }
        .unwrap_or_else(|e| panic!("{id} failed: {e}"));
        reports.push((
            spec.id.clone(),
            spec.spec_digest().to_string(),
            outcome.report.to_csv(),
        ));
        artifacts.extend(outcome.curve_sets.iter().map(|set| set.to_json()));
    }
    mess_exec::set_default_threads(0);
    SuiteOutput { reports, artifacts }
}

#[test]
fn observability_never_changes_outputs_at_any_worker_count() {
    // Every builtin experiment: simulation, characterization, profiling, and artifact
    // production all pass under the comparison.
    let ids: Vec<&str> = EXPERIMENTS.to_vec();

    // Baseline: observability fully disabled, sequential.
    mess_obs::set_enabled(false);
    let baseline = run_suite(&ids, 1, false);
    assert!(
        baseline.reports.iter().all(|(_, _, csv)| !csv.is_empty()),
        "the baseline produced real reports"
    );

    // Metrics + tracing on, sequential: every instrumentation site live.
    mess_obs::set_enabled(true);
    mess_obs::trace::start();
    let traced_sequential = run_suite(&ids, 1, true);

    // Same, on an 8-worker pool: instrumentation live on concurrent legs.
    let traced_parallel = run_suite(&ids, 8, true);
    let records = mess_obs::trace::finish();
    mess_obs::set_enabled(false);

    // Tracing actually happened — this test must not pass vacuously.
    assert!(
        records.iter().any(|r| r.name.starts_with("scenario:")),
        "expected scenario spans in {records:?}"
    );
    assert!(
        records.iter().any(|r| r.name.starts_with("leg:")),
        "expected leg spans"
    );

    assert_eq!(
        baseline, traced_sequential,
        "enabling observability changed an output"
    );
    assert_eq!(
        baseline, traced_parallel,
        "observability + 8 workers changed an output"
    );
}
