//! Regression tests for the declarative scenario pipeline.
//!
//! * every pre-existing experiment id runs through the spec pipeline and produces
//!   bit-identical reports at 1 and 8 workers (the output must not depend on scheduling);
//! * a builtin's `--dump-spec` JSON re-runs to the identical report (export → edit → re-run
//!   is lossless);
//! * the checked-in example campaign — a workload/platform/model pairing no builtin driver
//!   covers — runs end to end from its JSON file and emits CSV rows.

use mess_harness::{run_experiment, Fidelity, EXPERIMENTS};
use mess_scenario::{CampaignSpec, ScenarioSpec};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

#[test]
fn every_experiment_is_bit_identical_at_1_and_8_workers() {
    // The whole quick campaign, twice: once fully sequential, once on an 8-worker pool.
    // Every report — rows, notes, CSV — must match bit for bit; the spec pipeline keeps the
    // order-preserving `par_map` structure of the old drivers, so scheduling must never
    // leak into the output.
    let run_all = |threads: usize| -> Vec<mess_harness::ExperimentReport> {
        mess_exec::set_default_threads(threads);
        let reports = EXPERIMENTS
            .iter()
            .map(|id| run_experiment(id, Fidelity::Quick).expect("known id"))
            .collect();
        mess_exec::set_default_threads(0);
        reports
    };
    let sequential = run_all(1);
    let parallel = run_all(8);
    for (seq, par) in sequential.iter().zip(&parallel) {
        assert_eq!(seq, par, "{} differs between 1 and 8 workers", seq.id);
        assert_eq!(seq.to_csv(), par.to_csv(), "{} CSV differs", seq.id);
        assert!(!seq.rows.is_empty(), "{} produced no rows", seq.id);
    }
}

#[test]
fn dumped_builtin_spec_reruns_to_the_identical_report() {
    // `--dump-spec fig7 > f.json && --scenario f.json` must equal `-e fig7`: the JSON
    // round trip may not change a single byte of the report.
    let spec = mess_scenario::builtin_spec("fig7", Fidelity::Quick).expect("fig7 is builtin");
    let reparsed = ScenarioSpec::from_json(&spec.to_json()).expect("dumped JSON parses");
    assert_eq!(reparsed, spec);
    let from_file = mess_scenario::run_scenario(&reparsed).expect("spec runs");
    let from_driver = run_experiment("fig7", Fidelity::Quick).expect("known id");
    assert_eq!(from_file, from_driver);
    assert_eq!(from_file.to_csv(), from_driver.to_csv());
}

#[test]
fn checked_in_example_campaign_runs_end_to_end() {
    // The acceptance scenario: a campaign JSON pairing GUPS with the CXL-expander and
    // M/D/1 models — a combination no builtin driver covers — loads, validates, runs
    // through the job runner, and emits CSV rows.
    let path = scenarios_dir().join("custom-campaign.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let campaign = CampaignSpec::from_json(&text).expect("checked-in campaign parses");
    campaign.validate().expect("checked-in campaign validates");
    let reports = mess_scenario::run_campaign(&campaign, |_| {}).expect("campaign runs");
    assert_eq!(reports.len(), campaign.scenarios.len());
    for report in &reports {
        assert!(!report.rows.is_empty(), "{} produced no rows", report.id);
        let csv = report.to_csv();
        assert!(
            csv.lines().count() >= 2,
            "{} CSV has no data rows",
            report.id
        );
    }
    // Both scenarios run the same GUPS workload; the two models must disagree on IPC
    // (different queueing behaviour), which is exactly why the pairing is interesting.
    let ipc: Vec<f64> = reports
        .iter()
        .map(|r| r.rows[0][3].parse().expect("ipc column"))
        .collect();
    assert!(ipc[0] > 0.0 && ipc[1] > 0.0);
    assert_ne!(ipc[0], ipc[1]);
}

#[test]
fn checked_in_example_scenario_parses_and_validates() {
    // The single-scenario file used by the CI smoke run.
    let path = scenarios_dir().join("gups-cxl-expander.json");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let spec = ScenarioSpec::from_json(&text).expect("checked-in scenario parses");
    spec.validate().expect("checked-in scenario validates");
    assert_eq!(spec.id, "gups-cxl-expander");
}
