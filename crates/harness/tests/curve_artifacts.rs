//! End-to-end tests of the CurveSet artifact layer: the characterize → save →
//! re-simulate/profile loop that crosses core → platforms → bench → scenario → harness.
//!
//! * **Closed-loop determinism** (the acceptance criterion): characterizing a backend
//!   in-process (`Characterized` source) and running the same mess-sim scenario from the
//!   saved `CurveSet` file (`File` source, or the `--curves` override) yields bit-identical
//!   reports;
//! * saved artifacts re-serialize byte-identically after a load;
//! * the checked-in example artifact and the characterize/mess-sim/profile scenario files
//!   parse, validate, and (for the profile scenario) run end to end.

use mess_harness::write_curve_sets;
use mess_platforms::{MemoryModelKind, PlatformId};
use mess_scenario::{
    CurveSet, CurveSetProvenance, CurveSourceSpec, ModelSpec, PlatformRef, ScenarioKind,
    ScenarioOptions, ScenarioSpec, SweepPreset, SweepSpec,
};
use std::path::PathBuf;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mess-curve-artifacts-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A mess-sim scenario whose input curves come from `curves`.
fn mess_sim_spec(curves: CurveSourceSpec) -> ScenarioSpec {
    let platform = PlatformRef::quick(PlatformId::IntelSkylake);
    ScenarioSpec {
        id: "closed-loop".into(),
        title: "Mess simulator fed a characterized family".into(),
        platform,
        kind: ScenarioKind::MessCurves {
            platforms: vec![platform],
            curves,
            sweep: SweepSpec::preset(SweepPreset::Reduced),
        },
        notes: vec![],
    }
}

#[test]
fn closed_loop_in_process_and_file_loaded_curves_are_bit_identical() {
    // The paper's self-characterization experiment, entirely from spec data: measure the
    // M/D/1 backend with the Mess benchmark, feed the family to the Mess simulator, and
    // characterize the simulator.
    let characterized = CurveSourceSpec::Characterized {
        model: Box::new(ModelSpec::of(MemoryModelKind::Md1Queue)),
        sweep: SweepSpec::preset(SweepPreset::Reduced),
    };
    let in_process = mess_scenario::run_scenario(&mess_sim_spec(characterized.clone())).unwrap();

    // Persist the same characterization as a CurveSet artifact...
    let platform = PlatformRef::quick(PlatformId::IntelSkylake).resolve();
    let family =
        mess_scenario::resolve_curves(&characterized, &platform, &ScenarioOptions::default())
            .unwrap();
    let set = CurveSet::new(
        family,
        CurveSetProvenance::new("skylake", "md1-queue", "Reduced preset", "closed-loop"),
    )
    .unwrap();
    let dir = temp_dir("closed-loop");
    let path = dir.join("md1.json");
    set.save(&path).unwrap();

    // ...and run the identical scenario from the file: the report must not differ by a bit.
    let file_source = CurveSourceSpec::File {
        path: path.to_string_lossy().into_owned(),
    };
    let from_file = mess_scenario::run_scenario(&mess_sim_spec(file_source)).unwrap();
    assert_eq!(from_file, in_process, "file-loaded curves diverged");
    assert_eq!(from_file.to_csv(), in_process.to_csv());

    // The harness-level `--curves` override reaches the same fixed point.
    let options = ScenarioOptions {
        curves: Some(CurveSet::load(&path).unwrap()),
        ..Default::default()
    };
    let overridden = mess_scenario::run_scenario_with(
        &mess_sim_spec(CurveSourceSpec::PlatformReference),
        &options,
    )
    .unwrap();
    assert_eq!(overridden.report, in_process, "--curves override diverged");

    // And the artifact itself is a serialization fixed point.
    let bytes = std::fs::read_to_string(&path).unwrap();
    assert_eq!(CurveSet::load(&path).unwrap().to_json() + "\n", bytes);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn characterization_scenario_persists_artifacts_that_feed_the_simulator() {
    // The CI smoke path in miniature: run the checked-in characterization scenario,
    // persist its artifact with the harness writer, and drive the checked-in mess-sim
    // scenario from the file.
    let text = std::fs::read_to_string(scenarios_dir().join("characterize-skylake.json")).unwrap();
    let spec = ScenarioSpec::from_json(&text).expect("characterize scenario parses");
    spec.validate().expect("characterize scenario validates");
    let outcome = mess_scenario::run_scenario_with(&spec, &ScenarioOptions::default()).unwrap();
    assert_eq!(outcome.curve_sets.len(), 1, "one family characterized");

    let dir = temp_dir("smoke");
    let written = write_curve_sets(&dir, &outcome.curve_sets).unwrap();
    assert_eq!(
        written[0].file_name().unwrap().to_string_lossy(),
        "characterize-skylake-skylake-detailed-dram.json",
        "CI names this file in advance, so the naming scheme is pinned"
    );

    let text = std::fs::read_to_string(scenarios_dir().join("mess-sim-skylake.json")).unwrap();
    let sim = ScenarioSpec::from_json(&text).expect("mess-sim scenario parses");
    sim.validate().expect("mess-sim scenario validates");
    let options = ScenarioOptions {
        curves: Some(CurveSet::load(&written[0]).unwrap()),
        ..Default::default()
    };
    let outcome = mess_scenario::run_scenario_with(&sim, &options).unwrap();
    assert!(!outcome.report.rows.is_empty());
    // The simulator was fed the measured DRAM curves, so its input unloaded latency in
    // the report matches the artifact's family, not the synthetic reference.
    let input_unloaded: f64 = outcome.report.rows[0][1].parse().unwrap();
    let artifact_unloaded = options
        .curves
        .as_ref()
        .unwrap()
        .family()
        .unloaded_latency()
        .as_ns();
    assert!(
        (input_unloaded - artifact_unloaded.round()).abs() <= 1.0,
        "report input {input_unloaded} ns vs artifact {artifact_unloaded} ns"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checked_in_example_curveset_loads_and_is_byte_stable() {
    let path = scenarios_dir().join("skylake-reference.curveset.json");
    let set = CurveSet::load(&path)
        .unwrap_or_else(|e| panic!("checked-in curve artifact must load: {e}"));
    assert_eq!(set.version(), mess_core::CURVESET_FORMAT_VERSION);
    assert_eq!(set.provenance().platform, "skylake");
    assert!(set.family().len() >= 2, "at least two ratio curves");
    // The checked-in bytes are exactly what the serializer produces (a regenerated file
    // never shows a spurious diff).
    let bytes = std::fs::read_to_string(&path).unwrap();
    assert_eq!(set.to_json() + "\n", bytes);
}

#[test]
fn checked_in_profile_scenario_runs_on_the_checked_in_artifact() {
    let path = scenarios_dir().join("profile-gups-curves.json");
    let text = std::fs::read_to_string(&path).unwrap();
    let mut spec = ScenarioSpec::from_json(&text).expect("profile scenario parses");
    spec.validate().expect("profile scenario validates");
    // The file's path is repo-root relative (for CLI runs from the repo root); the test
    // runs from the crate dir, so rewrite it to the absolute location.
    if let ScenarioKind::Profile {
        curves: CurveSourceSpec::File { path },
        ..
    } = &mut spec.kind
    {
        assert!(
            path.ends_with("skylake-reference.curveset.json"),
            "the scenario references the checked-in artifact"
        );
        *path = scenarios_dir()
            .join("skylake-reference.curveset.json")
            .to_string_lossy()
            .into_owned();
    } else {
        panic!("profile-gups-curves.json must be a Profile kind with a File curve source");
    }
    let report = mess_scenario::run_scenario(&spec).unwrap();
    assert!(!report.rows.is_empty(), "the timeline has samples");
    assert!(
        report.notes.iter().any(|n| n.contains("mean stress")),
        "headline stress note present"
    );
}
