//! Criterion benchmark: the parallel characterization sweep versus the sequential one.
//!
//! The Mess characterization is embarrassingly parallel at the point level: every
//! (store-mix, pause) pair is an independent simulation. This bench runs the same
//! quick-platform sweep through `characterize_with` at 1 and 4 workers and prints the
//! wall-clock speedup. The acceptance bar is ≥2× at 4 workers **on a host with ≥4 hardware
//! threads**; on fewer cores the pool degrades gracefully towards 1× (the determinism suite
//! separately guarantees the *output* is identical either way).

use criterion::{criterion_group, criterion_main, Criterion};
use mess_bench::sweep::{characterize_with, SweepConfig};
use mess_exec::ExecConfig;
use mess_harness::runner::scaled_platform;
use mess_harness::Fidelity;
use mess_platforms::PlatformId;
use std::time::Instant;

/// Enough points (2 mixes × 8 pauses) that a 4-worker pool stays busy and load-imbalance
/// between cheap (high-pause) and expensive (zero-pause) points washes out.
fn sweep() -> SweepConfig {
    SweepConfig {
        store_mixes: vec![0.0, 1.0],
        pause_levels: vec![400, 200, 120, 56, 28, 12, 4, 0],
        chase_loads: 150,
        max_cycles_per_point: 800_000,
    }
}

fn run_sweep(threads: usize) -> usize {
    let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), Fidelity::Quick);
    let c = characterize_with(
        "parallel-sweep",
        &platform.cpu_config(),
        || platform.build_dram(),
        &sweep(),
        &ExecConfig::with_threads(threads),
    )
    .expect("sweep configuration is valid");
    c.points.len()
}

fn parallel_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel-sweep");
    group.sample_size(10);
    group.bench_function("characterize/1-thread", |b| b.iter(|| run_sweep(1)));
    group.bench_function("characterize/4-threads", |b| b.iter(|| run_sweep(4)));
    group.finish();
}

/// Headline number: wall-clock speedup of the 4-worker sweep over the sequential one.
fn speedup(_c: &mut Criterion) {
    let time = |threads: usize| {
        let start = Instant::now();
        let points = run_sweep(threads);
        (start.elapsed().as_secs_f64(), points)
    };
    // Warm up once per configuration, then measure.
    let _ = (run_sweep(1), run_sweep(4));
    let (sequential, points) = time(1);
    let (parallel, _) = time(4);
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "parallel-sweep/speedup  {points} points: {sequential:.2}s @ 1 worker, {parallel:.2}s \
         @ 4 workers -> {:.2}x (host has {available} hardware threads; acceptance bar: >=2x \
         at 4 workers on a >=4-thread host)",
        sequential / parallel
    );
}

criterion_group!(benches, parallel_sweep, speedup);
criterion_main!(benches);
