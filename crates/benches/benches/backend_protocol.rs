//! Placeholder; implemented with the v2 protocol work.
fn main() {}
