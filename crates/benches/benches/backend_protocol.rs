//! Criterion benchmark: the v2 event-driven backend protocol versus the v1 lockstep loop.
//!
//! Two scenarios bracket the protocol's design space:
//!
//! * **pointer-chase** — latency-bound, maximal dead cycles: one core executes a chain of
//!   dependent loads against a fixed 100 ns memory, so ~200 CPU cycles between a request
//!   and its completion carry no work at all. The v1 protocol ticks the backend through
//!   every one of them; the v2 loop jumps straight to `next_event()`.
//! * **stream** — bandwidth-bound, batched issue: a windowed sequential read stream keeps
//!   the memory interface saturated; the win here is one `issue()` call per cycle instead
//!   of one virtual call per request.
//!
//! The lockstep baselines below speak the same v2 trait (`try_enqueue` is the provided
//! single-request wrapper) but advance the clock one cycle at a time, exactly like the old
//! `Engine::run`/`replay` main loops — measured in the same process, on the same backend
//! configuration, over the same request counts. `speedup` prints the headline ratio; the
//! acceptance bar is ≥2× on pointer-chase.

use criterion::{criterion_group, criterion_main, Criterion};
use mess_cpu::{CacheConfig, CpuConfig, Engine, Op, StopCondition, VecStream};
use mess_memmodels::FixedLatencyModel;
use mess_types::{Completion, Cycle, Frequency, Latency, MemoryBackend};
use std::time::Instant;

const CHASE_LOADS: u64 = 2_000;
const STREAM_LINES: u64 = 20_000;
const MEMORY_NS: f64 = 100.0;
const FREQ_GHZ: f64 = 2.0;

fn memory() -> FixedLatencyModel {
    FixedLatencyModel::new(Latency::from_ns(MEMORY_NS), Frequency::from_ghz(FREQ_GHZ))
}

fn single_core_config() -> CpuConfig {
    CpuConfig {
        llc: CacheConfig::disabled(),
        ..CpuConfig::server_class(1, Frequency::from_ghz(FREQ_GHZ))
    }
}

// ---------------------------------------------------------------------------
// Event-driven side: the real Engine (v2 main loop).
// ---------------------------------------------------------------------------

fn chase_event_driven() -> u64 {
    let ops: Vec<Op> = (0..CHASE_LOADS)
        .map(|i| Op::dependent_load(i * 4096))
        .collect();
    let mut engine = Engine::new(single_core_config(), vec![VecStream::new(ops)]);
    let mut backend = memory();
    let report = engine.run(&mut backend, StopCondition::AllStreamsDone, u64::MAX / 2);
    assert_eq!(report.memory.reads_completed, CHASE_LOADS);
    report.cycles
}

fn stream_event_driven() -> u64 {
    let ops: Vec<Op> = (0..STREAM_LINES).map(|i| Op::load(i * 64)).collect();
    let mut engine = Engine::new(single_core_config(), vec![VecStream::new(ops)]);
    let mut backend = memory();
    let report = engine.run(&mut backend, StopCondition::AllStreamsDone, u64::MAX / 2);
    assert_eq!(report.memory.reads_completed, STREAM_LINES);
    report.cycles
}

// ---------------------------------------------------------------------------
// Lockstep baselines: the v1 protocol (tick + single-request enqueue, every cycle).
// ---------------------------------------------------------------------------

/// Dependent-load chain, one request in flight, clock stepped cycle by cycle.
fn chase_lockstep() -> u64 {
    let mut backend = memory();
    let on_chip = 90u64; // stands in for the engine's on-chip return path, constant per load
    let mut out: Vec<Completion> = Vec::new();
    let mut now = 0u64;
    for i in 0..CHASE_LOADS {
        backend
            .try_enqueue(mess_types::Request::read(i, i * 4096, Cycle::new(now), 0))
            .expect("fixed-latency model never rejects");
        loop {
            backend.tick(Cycle::new(now));
            out.clear();
            if backend.drain_completed(&mut out) > 0 {
                now = out[0].complete_cycle.as_u64() + on_chip;
                break;
            }
            now += 1;
        }
    }
    now
}

/// Windowed sequential reads (12 outstanding, the server-class MSHR count), lockstep clock.
fn stream_lockstep() -> u64 {
    let mut backend = memory();
    let window = 12usize;
    let mut out: Vec<Completion> = Vec::new();
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut in_flight = 0usize;
    let mut now = 0u64;
    while completed < STREAM_LINES {
        backend.tick(Cycle::new(now));
        out.clear();
        let drained = backend.drain_completed(&mut out);
        completed += drained as u64;
        in_flight = in_flight.saturating_sub(drained);
        // One request per cycle per free window slot — the v1 per-request virtual-call path.
        if in_flight < window && issued < STREAM_LINES {
            backend
                .try_enqueue(mess_types::Request::read(
                    issued,
                    issued * 64,
                    Cycle::new(now),
                    0,
                ))
                .expect("fixed-latency model never rejects");
            issued += 1;
            in_flight += 1;
        }
        now += 1;
    }
    now
}

// ---------------------------------------------------------------------------
// Benchmarks
// ---------------------------------------------------------------------------

fn backend_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend-protocol");
    group.sample_size(10);
    group.bench_function("pointer-chase/lockstep-v1", |b| b.iter(chase_lockstep));
    group.bench_function("pointer-chase/event-driven-v2", |b| {
        b.iter(chase_event_driven)
    });
    group.bench_function("stream/lockstep-v1", |b| b.iter(stream_lockstep));
    group.bench_function("stream/event-driven-v2", |b| b.iter(stream_event_driven));
    group.finish();
}

/// Headline numbers: wall-clock speedup of the v2 protocol over the v1 baseline.
fn speedup(_c: &mut Criterion) {
    let time = |f: &dyn Fn() -> u64| {
        let start = Instant::now();
        let cycles = f();
        (start.elapsed().as_secs_f64(), cycles)
    };
    // Warm up once, then measure.
    let _ = (
        chase_lockstep(),
        chase_event_driven(),
        stream_lockstep(),
        stream_event_driven(),
    );
    let (chase_v1, _) = time(&chase_lockstep);
    let (chase_v2, _) = time(&chase_event_driven);
    let (stream_v1, _) = time(&stream_lockstep);
    let (stream_v2, _) = time(&stream_event_driven);
    println!(
        "backend-protocol/speedup  pointer-chase: {:.1}x  stream: {:.2}x  \
         (v1 lockstep time / v2 event-driven time; acceptance bar: >=2x on pointer-chase)",
        chase_v1 / chase_v2,
        stream_v1 / stream_v2
    );
}

criterion_group!(benches, backend_protocol, speedup);
criterion_main!(benches);
