//! Criterion benchmark: one entry point per paper figure/table.
//!
//! `cargo bench -p mess-benches -- fig5` regenerates the corresponding experiment (at quick
//! fidelity inside the benchmark loop so Criterion can time it; run the `mess-harness` binary
//! with `--full` for the full-fidelity tables recorded in EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use mess_harness::{run_experiment, Fidelity, EXPERIMENTS};

/// A representative, cheap subset is timed by default; pass a figure id on the command line
/// (`cargo bench -p mess-benches -- fig11`) to time any of the drivers in [`EXPERIMENTS`].
const TIMED_BY_DEFAULT: [&str; 3] = ["fig2", "fig6", "fig15"];

fn figures(c: &mut Criterion) {
    assert!(TIMED_BY_DEFAULT.iter().all(|id| EXPERIMENTS.contains(id)));
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for id in EXPERIMENTS {
        if !TIMED_BY_DEFAULT.contains(&id) {
            // Still registered so `-- figN` can select it, but skipped in the default sweep
            // by giving Criterion nothing to measure unless explicitly filtered.
            continue;
        }
        group.bench_function(id, |b| {
            b.iter(|| {
                let report = run_experiment(id, Fidelity::Quick).expect("known experiment id");
                assert!(!report.rows.is_empty());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
