//! Criterion benchmark: memory-model simulation speed (paper §V-B).
//!
//! The paper reports that ZSim+Mess adds only ~26 % simulation time over the fixed-latency
//! model while being 13–15× faster than the cycle-accurate external simulators. This bench
//! runs the same STREAM-triad-like traffic through every memory model and lets Criterion
//! report the relative cost, which is the reproduction of that comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mess_bench::TrafficConfig;
use mess_cpu::{Engine, OpStream, StopCondition};
use mess_harness::runner::scaled_platform;
use mess_harness::Fidelity;
use mess_platforms::{build_memory_model, MemoryModelKind, PlatformId};

fn run_traffic(kind: MemoryModelKind) {
    let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), Fidelity::Quick);
    let curves = kind.needs_curves().then(|| platform.reference_family());
    let mut backend = build_memory_model(kind, &platform, curves).expect("model builds");
    let cpu = platform.cpu_config();
    let traffic = TrafficConfig::new(0.3, 0, cpu.llc.capacity_bytes);
    let streams: Vec<Box<dyn OpStream>> = traffic.lanes(cpu.cores);
    let mut engine = Engine::from_boxed(cpu, streams);
    let report = engine.run(
        backend.as_mut(),
        StopCondition::MemoryOps(20_000),
        5_000_000,
    );
    assert!(report.memory.total_completed() > 0);
}

fn simulation_speed(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation-speed");
    group.sample_size(10);
    for kind in [
        MemoryModelKind::FixedLatency,
        MemoryModelKind::Md1Queue,
        MemoryModelKind::InternalDdr,
        MemoryModelKind::Dramsim3Like,
        MemoryModelKind::RamulatorLike,
        MemoryModelKind::DetailedDram,
        MemoryModelKind::Mess,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| run_traffic(kind));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, simulation_speed);
criterion_main!(benches);
