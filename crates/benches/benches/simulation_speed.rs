//! Criterion benchmark: memory-model simulation speed (paper §V-B).
//!
//! The paper reports that ZSim+Mess adds only ~26 % simulation time over the fixed-latency
//! model while being 13–15× faster than the cycle-accurate external simulators. This bench
//! runs three traffic shapes through every memory model and lets Criterion report the
//! relative cost, which is the reproduction of that comparison:
//!
//! * `stream/<model>` — STREAM-triad-like bandwidth traffic (every core issuing every
//!   cycle, so the issuer cannot skip cycles regardless of the backend);
//! * `pointer-chase/<model>` — a single dependent-load chain, the Mess benchmark's latency
//!   probe (one request in flight, queues almost always empty);
//! * `random-mlp/<model>` — one core issuing independent random loads up to its MSHR
//!   limit, then stalling: the low-occupancy regime in which the backend's queues stay
//!   *non-empty* while every core is blocked. This is the shape on which an exact
//!   `next_event` pays off — a backend that answers `now + 1` whenever work is queued
//!   (the detailed DRAM model before its event engine) drags the whole simulation into
//!   per-cycle lockstep here.
//!
//! A fourth group, `workload-compile/<spec>`, times the *compile stage* on its own — the
//! `WorkloadSpec` → `CompiledWorkload` lowering that runs once per scenario leg, before
//! any engine cycle (simlin's `bytecode_compile`-vs-VM split). Keeping the two stages in
//! one bench file keeps their ratio honest: a compile-pass regression cannot hide inside
//! an execution win or vice versa.
//!
//! # Machine-readable output
//!
//! Besides the Criterion timings, the bench prints one plain line per (shape, model) and
//! one per compile case:
//!
//! ```text
//! sim_ops_per_sec shape=pointer-chase model=detailed-dram value=123456.7
//! compiles_per_sec workload=multichase value=123.4
//! ```
//!
//! and writes `BENCH_simspeed.json` into the working directory (`crates/benches/` under
//! `cargo bench`). The JSON schema is documented in `crates/benches/README.md`; it is the
//! accumulation point for the simulation-throughput trajectory across PRs.
//!
//! # Quick mode
//!
//! `cargo bench --bench simulation_speed -- --quick` (used by CI as a smoke test) shrinks
//! the per-run operation budget and the sample count so the whole bench finishes in
//! seconds while still exercising every model's event-driven path end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mess_bench::{PointerChaseConfig, TrafficConfig};
use mess_cpu::{Engine, OpStream, StopCondition};
use mess_harness::runner::scaled_platform;
use mess_harness::Fidelity;
use mess_platforms::{build_memory_model, MemoryModelKind, PlatformId};
use mess_workloads::{StreamKernel, WorkloadSpec};
use std::fmt::Write as _;
use std::time::Instant;

/// The models compared, in the paper's presentation order.
const MODELS: [MemoryModelKind; 7] = [
    MemoryModelKind::FixedLatency,
    MemoryModelKind::Md1Queue,
    MemoryModelKind::InternalDdr,
    MemoryModelKind::Dramsim3Like,
    MemoryModelKind::RamulatorLike,
    MemoryModelKind::DetailedDram,
    MemoryModelKind::Mess,
];

/// The traffic shapes, with the memory-operation budget per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    Stream,
    PointerChase,
    RandomMlp,
}

impl Shape {
    fn label(self) -> &'static str {
        match self {
            Shape::Stream => "stream",
            Shape::PointerChase => "pointer-chase",
            Shape::RandomMlp => "random-mlp",
        }
    }
}

/// Splitmix-style address hash for the `random-mlp` shape.
fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Per-process workload fixture. The heavyweight inputs — the platform spec, the
/// pointer-chase permutation and the Mess model's reference curve family — are built once,
/// outside the timed region; per-run backend/engine construction stays inside it (standing
/// up a model is part of a simulation run, and it is microseconds next to the run itself).
struct Fixture {
    platform: mess_platforms::PlatformSpec,
    chase: mess_bench::PointerChaseStream,
    curves: mess_core::CurveFamily,
}

impl Fixture {
    fn new(chase_ops: u64) -> Self {
        let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), Fidelity::Quick);
        let cpu = platform.cpu_config();
        // One probe core chasing dependent loads: the lowest-occupancy traffic the Mess
        // benchmark generates (its latency probe). Budget 2× the stop condition so the
        // chain never runs dry.
        let chase =
            PointerChaseConfig::sized_against_llc(cpu.llc.capacity_bytes, chase_ops * 2).stream();
        let curves = platform.reference_family();
        Fixture {
            platform,
            chase,
            curves,
        }
    }

    /// Runs `ops` memory operations of `shape` through `kind`; returns the ops completed.
    fn run_traffic(&self, kind: MemoryModelKind, shape: Shape, ops: u64) -> u64 {
        let curves = kind.needs_curves().then(|| self.curves.clone());
        let mut backend = build_memory_model(kind, &self.platform, curves).expect("model builds");
        let cpu = self.platform.cpu_config();
        let streams: Vec<Box<dyn OpStream>> = match shape {
            Shape::Stream => TrafficConfig::new(0.3, 0, cpu.llc.capacity_bytes).lanes(cpu.cores),
            Shape::PointerChase => {
                let mut streams: Vec<Box<dyn OpStream>> = vec![Box::new(self.chase.clone())];
                for _ in 1..cpu.cores {
                    streams.push(Box::new(mess_cpu::VecStream::new(Vec::new())));
                }
                streams
            }
            Shape::RandomMlp => {
                // One core of independent random loads over a far-larger-than-LLC window:
                // it runs ahead until its (generous, GPU-lane-like) MSHR budget fills,
                // then blocks until a completion frees one. A single core cannot saturate
                // the memory system, so core occupancy stays low while the controller
                // queues stay non-empty — the regime that used to degrade to lockstep.
                let lines = (cpu.llc.capacity_bytes / 64).max(1) * 64;
                let ops_budget = ops * 2;
                let loads: Vec<mess_cpu::Op> = (0..ops_budget)
                    .map(|i| mess_cpu::Op::load((mix(i) % lines) * 64))
                    .collect();
                let mut streams: Vec<Box<dyn OpStream>> =
                    vec![Box::new(mess_cpu::VecStream::new(loads))];
                for _ in 1..cpu.cores {
                    streams.push(Box::new(mess_cpu::VecStream::new(Vec::new())));
                }
                streams
            }
        };
        let cpu = match shape {
            Shape::RandomMlp => mess_cpu::CpuConfig {
                mshrs_per_core: 24,
                ..cpu
            },
            _ => cpu,
        };
        let mut engine = Engine::from_boxed(cpu, streams);
        let report = engine.run(backend.as_mut(), StopCondition::MemoryOps(ops), 500_000_000);
        let completed = report.memory.total_completed();
        assert!(completed >= ops, "run must complete its operation budget");
        completed
    }

    /// One timed throughput measurement (outside Criterion, for machine-readable output).
    fn measure_ops_per_sec(&self, kind: MemoryModelKind, shape: Shape, ops: u64) -> f64 {
        // Warm-up run, then a timed run.
        self.run_traffic(kind, shape, ops);
        let start = Instant::now();
        let completed = self.run_traffic(kind, shape, ops);
        let elapsed = start.elapsed().as_secs_f64();
        completed as f64 / elapsed.max(1e-9)
    }
}

/// The workload-compile stage cases: specs spanning the compile pass's cost range, from
/// header-only lowering (STREAM: a four-op body plus trip counts) to materializing a full
/// Sattolo lap (multichase: one packed op per working-set line).
fn compile_cases() -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("stream-triad", WorkloadSpec::stream(StreamKernel::Triad, 4)),
        ("lat-mem-rd", WorkloadSpec::lat_mem_rd(4_000)),
        ("multichase", WorkloadSpec::multichase(4_000)),
        ("gups", WorkloadSpec::gups(4_000)),
    ]
}

/// One timed compile-rate measurement (outside Criterion, for machine-readable output).
fn measure_compiles_per_sec(spec: &WorkloadSpec, llc_bytes: u64, cores: u32, iters: u32) -> f64 {
    // Warm-up compile, then a timed loop.
    let _ = spec.compile(llc_bytes, cores).expect("workload compiles");
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(spec.compile(llc_bytes, cores).expect("workload compiles"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    iters as f64 / elapsed.max(1e-9)
}

fn simulation_speed(c: &mut Criterion) {
    let quick = quick_mode();
    let (stream_ops, chase_ops) = if quick { (2_000, 500) } else { (20_000, 4_000) };
    let fixture = Fixture::new(chase_ops);
    let shapes = [
        (Shape::Stream, stream_ops),
        (Shape::PointerChase, chase_ops),
        (Shape::RandomMlp, chase_ops),
    ];

    for (shape, ops) in shapes {
        let mut group = c.benchmark_group(format!("simulation-speed/{}", shape.label()));
        group.sample_size(if quick { 2 } else { 10 });
        for kind in MODELS {
            group.bench_with_input(
                BenchmarkId::from_parameter(kind.label()),
                &kind,
                |b, &kind| {
                    b.iter(|| fixture.run_traffic(kind, shape, ops));
                },
            );
        }
        group.finish();
    }

    // The per-stage split (simlin's bytecode_compile vs VM benches): the workload-compile
    // pass timed apart from engine execution, so a compile-cost regression is visible
    // separately from a hot-loop one.
    let cpu = fixture.platform.cpu_config();
    let compile_iters = if quick { 20 } else { 200 };
    let mut group = c.benchmark_group("workload-compile");
    group.sample_size(if quick { 2 } else { 10 });
    for (name, spec) in compile_cases() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| {
                spec.compile(cpu.llc.capacity_bytes, cpu.cores)
                    .expect("workload compiles")
            });
        });
    }
    group.finish();

    // Plain per-model throughput lines + BENCH_simspeed.json, the perf trajectory record.
    let mut json = String::from("{\n  \"benchmark\": \"simulation_speed\",\n  \"unit\": \"sim_ops_per_sec\",\n  \"shapes\": {\n");
    for (i, (shape, ops)) in shapes.into_iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", shape.label());
        for (j, kind) in MODELS.into_iter().enumerate() {
            let rate = fixture.measure_ops_per_sec(kind, shape, ops);
            println!(
                "sim_ops_per_sec shape={} model={} value={rate:.1}",
                shape.label(),
                kind.label()
            );
            let comma = if j + 1 < MODELS.len() { "," } else { "" };
            let _ = writeln!(json, "      \"{}\": {rate:.1}{comma}", kind.label());
        }
        let comma = if i + 1 < shapes.len() { "," } else { "" };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str(
        "  },\n  \"compile\": {\n    \"unit\": \"compiles_per_sec\",\n    \"workloads\": {\n",
    );
    let cases = compile_cases();
    for (j, (name, spec)) in cases.iter().enumerate() {
        let rate = measure_compiles_per_sec(spec, cpu.llc.capacity_bytes, cpu.cores, compile_iters);
        println!("compiles_per_sec workload={name} value={rate:.1}");
        let comma = if j + 1 < cases.len() { "," } else { "" };
        let _ = writeln!(json, "      \"{name}\": {rate:.1}{comma}");
    }
    json.push_str("    }\n  }\n}\n");
    if let Err(err) = std::fs::write("BENCH_simspeed.json", &json) {
        eprintln!("warning: could not write BENCH_simspeed.json: {err}");
    }
}

criterion_group!(benches, simulation_speed);
criterion_main!(benches);
