//! Criterion benchmarks for the Mess reproduction.
//!
//! This crate holds no library code; its `benches/` directory contains:
//!
//! * `simulation_speed` — the memory-model simulation-speed comparison of paper §V-B
//!   (fixed latency vs M/D/1 vs internal DDR vs DRAMsim3/Ramulator-like vs detailed DRAM vs
//!   the Mess simulator);
//! * `figures` — one timed entry point per paper figure/table, each running the corresponding
//!   `mess-harness` experiment driver;
//! * `backend_protocol` — the v2 event-driven backend protocol versus the v1 lockstep loop
//!   (acceptance bar: ≥2× on pointer-chase);
//! * `parallel_sweep` — the `mess-exec` parallel characterization sweep at 1 vs 4 workers
//!   (acceptance bar: ≥2× at 4 workers on a ≥4-thread host).

#![warn(missing_docs)]
