//! Criterion benchmarks for the Mess reproduction.
//!
//! This crate holds no library code; its `benches/` directory contains:
//!
//! * `simulation_speed` — the memory-model simulation-speed comparison of paper §V-B
//!   (fixed latency vs M/D/1 vs internal DDR vs DRAMsim3/Ramulator-like vs detailed DRAM vs
//!   the Mess simulator);
//! * `figures` — one timed entry point per paper figure/table, each running the corresponding
//!   `mess-harness` experiment driver.

#![warn(missing_docs)]
