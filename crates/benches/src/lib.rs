//! Criterion benchmarks for the Mess reproduction.
//!
//! This crate holds no library code; its `benches/` directory contains:
//!
//! * `simulation_speed` — the memory-model simulation-speed comparison of paper §V-B
//!   (fixed latency vs M/D/1 vs internal DDR vs DRAMsim3/Ramulator-like vs detailed DRAM vs
//!   the Mess simulator), on both bandwidth-bound (`stream`) and latency-bound
//!   (`pointer-chase`) traffic. Besides the Criterion timings it prints one
//!   `sim_ops_per_sec shape=<shape> model=<model> value=<rate>` line per entry and writes
//!   `BENCH_simspeed.json` (schema in this crate's `README.md`), so the simulation-speed
//!   trajectory accumulates across PRs. `-- --quick` shrinks it to a CI smoke test;
//!   CI builds it with the `release-bench` profile (`lto = "thin"`, one codegen unit).
//! * `figures` — one timed entry point per paper figure/table, each running the
//!   corresponding `mess-harness` experiment driver;
//! * `backend_protocol` — the v2 event-driven backend protocol versus the v1 lockstep loop
//!   (acceptance bar: ≥2× on pointer-chase);
//! * `parallel_sweep` — the `mess-exec` parallel characterization sweep at 1 vs 4 workers
//!   (acceptance bar: ≥2× at 4 workers on a ≥4-thread host).
//!
//! The test module below holds the *deterministic* counterpart of the `simulation_speed`
//! acceptance bar: wall-clock speedups are host-dependent, but the number of backend
//! interactions per simulated cycle is not, so CI asserts the cycle-skipping behaviour
//! itself rather than a timing.

#![warn(missing_docs)]

#[cfg(test)]
mod tests {
    use mess_cpu::{Engine, OpStream, StopCondition, VecStream};
    use mess_harness::runner::scaled_platform;
    use mess_harness::Fidelity;
    use mess_platforms::{build_memory_model, MemoryModelKind, PlatformId};
    use mess_types::{Completion, Cycle, IssueOutcome, MemoryBackend, MemoryStats, Request};

    /// Counts how often the engine interacts with the backend: the host-independent
    /// observable behind the simulation-speed win.
    struct TickCounting<B> {
        inner: B,
        ticks: u64,
    }

    impl<B: MemoryBackend> MemoryBackend for TickCounting<B> {
        fn tick(&mut self, now: Cycle) {
            self.ticks += 1;
            self.inner.tick(now);
        }
        fn issue(&mut self, batch: &[Request]) -> IssueOutcome {
            self.inner.issue(batch)
        }
        fn drain_completed(&mut self, out: &mut Vec<Completion>) -> usize {
            self.inner.drain_completed(out)
        }
        fn next_event(&self) -> Option<Cycle> {
            self.inner.next_event()
        }
        fn pending(&self) -> usize {
            self.inner.pending()
        }
        fn stats(&self) -> MemoryStats {
            self.inner.stats()
        }
        fn name(&self) -> &str {
            self.inner.name()
        }
    }

    /// The detailed DRAM model used to force per-cycle lockstep on low-occupancy traffic
    /// (`next_event` returned `now + 1` whenever anything was queued), which is exactly why
    /// it dominated sweep wall-clock. With the exact event engine a pointer-chase must tick
    /// it a handful of times per load, not once per cycle.
    #[test]
    fn detailed_dram_pointer_chase_skips_cycles() {
        let platform = scaled_platform(&PlatformId::IntelSkylake.spec(), Fidelity::Quick);
        let backend = build_memory_model(MemoryModelKind::DetailedDram, &platform, None)
            .expect("detailed model builds");
        let mut counting = TickCounting {
            inner: backend,
            ticks: 0,
        };
        let cpu = platform.cpu_config();
        let chase =
            mess_bench::PointerChaseConfig::sized_against_llc(cpu.llc.capacity_bytes, 4_000);
        let mut streams: Vec<Box<dyn OpStream>> = vec![Box::new(chase.stream())];
        for _ in 1..cpu.cores {
            streams.push(Box::new(VecStream::new(Vec::new())));
        }
        let mut engine = Engine::from_boxed(cpu, streams);
        let report = engine.run(&mut counting, StopCondition::MemoryOps(2_000), 500_000_000);
        assert!(report.memory.total_completed() >= 2_000);
        assert!(
            report.cycles > 100_000,
            "a pointer chase over DRAM must burn real simulated time, got {} cycles",
            report.cycles
        );
        // Pre-rewrite the engine ticked the detailed model once per cycle (ticks ≈ cycles).
        // The exact next_event must cut that by far more than the 3× speedup bar; allow a
        // wide margin so the assertion stays robust to scheduling details.
        assert!(
            counting.ticks * 10 < report.cycles,
            "detailed DRAM no longer skips cycles: {} ticks over {} cycles",
            counting.ticks,
            report.cycles
        );
    }
}
