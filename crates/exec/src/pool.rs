//! The scoped worker pool and the deterministic, order-preserving `par_map`.
//!
//! Work distribution is a shared pull queue (a mutex around an enumerated iterator): workers
//! take the next `(index, item)` pair when they become free, so uneven point costs balance
//! automatically. Results travel back over an [`mpsc`] channel tagged with their input index
//! and are written into their input slot, which is what makes the output order — and
//! therefore every CSV and curve family derived from it — independent of scheduling.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// Process-wide default worker count; `0` means "ask [`std::thread::available_parallelism`]".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

std::thread_local! {
    /// `true` on threads spawned by a `mess-exec` pool or graph runner. Nested parallel
    /// calls check this and run inline, so the configured worker count is a *process-wide*
    /// cap rather than a per-nesting-level multiplier.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };

    /// Per-thread override of the default worker count (see [`with_default_threads`]);
    /// `0` means "no override, use the process-wide default".
    static THREAD_OVERRIDE: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// `true` when the current thread is a `mess-exec` worker (a parallel call made here would
/// run inline rather than spawn a second level of threads).
pub fn in_worker() -> bool {
    IN_WORKER.with(|flag| flag.get())
}

/// Marks the current thread as a pool worker for the duration of the returned guard.
pub(crate) struct WorkerMark;

impl WorkerMark {
    pub(crate) fn enter() -> WorkerMark {
        IN_WORKER.with(|flag| flag.set(true));
        WorkerMark
    }
}

impl Drop for WorkerMark {
    fn drop(&mut self) {
        IN_WORKER.with(|flag| flag.set(false));
    }
}

/// Sets the process-wide default worker count used by [`ExecConfig::default`].
///
/// `0` restores the built-in default (one worker per available hardware thread). The harness
/// binary maps its `--threads N` flag to this so every driver it calls — none of which take a
/// thread-count parameter — inherits the setting.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The default worker count seen by the current thread: a [`with_default_threads`]
/// override if one is active here, else the last [`set_default_threads`] value, else the
/// available hardware parallelism (at least 1).
pub fn default_threads() -> usize {
    let overridden = THREAD_OVERRIDE.with(|cell| cell.get());
    if overridden != 0 {
        return overridden;
    }
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Runs `f` with this thread's default worker count overridden to `threads` (`0` removes
/// the override), restoring the previous value afterwards — panic-safe.
///
/// This is the per-*run* counterpart to the process-wide [`set_default_threads`]: a
/// resident service executing several runs concurrently gives each run its requested
/// worker count by wrapping the run's top-level call, without the runs racing on one
/// global. Parallel calls made *inside* pool workers run inline anyway (see
/// [`in_worker`]), so overriding the spawning thread is sufficient to control the run's
/// entire fan-out.
pub fn with_default_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let previous = THREAD_OVERRIDE.with(|cell| {
        let previous = cell.get();
        cell.set(threads);
        previous
    });
    let _restore = Restore(previous);
    f()
}

/// Configuration of a parallel execution: how many workers to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of worker threads; `0` means "use [`default_threads`]".
    pub threads: usize,
}

impl Default for ExecConfig {
    /// The default configuration defers to the process-wide setting (see
    /// [`set_default_threads`]).
    fn default() -> Self {
        ExecConfig { threads: 0 }
    }
}

impl ExecConfig {
    /// A configuration with exactly `threads` workers (`0` defers to [`default_threads`]).
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig { threads }
    }

    /// A strictly sequential configuration (one worker, runs inline on the caller's thread).
    pub fn sequential() -> Self {
        ExecConfig { threads: 1 }
    }

    /// Picks where the parallelism of a two-level fan-out should live, given that the outer
    /// level has `legs` items whose bodies contain their *own* parallel calls (for example
    /// per-platform legs that each run a parallel sweep).
    ///
    /// Nested parallel calls run inline on pool workers, so an outer map with fewer legs
    /// than the pool has workers would strand the rest of the pool. In that case this
    /// returns [`ExecConfig::sequential`] — the outer level iterates inline on the caller's
    /// thread (not a marked worker) and the inner calls keep the full pool. With enough
    /// legs to fill the pool it returns [`ExecConfig::default`] and the outer level fans
    /// out. Either way the output is identical; only the schedule changes.
    ///
    /// Use the plain default for outer maps whose bodies are purely sequential — running
    /// those legs concurrently is always right.
    pub fn for_fanout(legs: usize) -> Self {
        if legs >= default_threads() {
            ExecConfig::default()
        } else {
            ExecConfig::sequential()
        }
    }

    /// The worker count this configuration resolves to, never zero.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => default_threads(),
            n => n,
        }
    }
}

/// A handle bundling an [`ExecConfig`] with the map/execute entry points.
///
/// The pool is *scoped*: threads are spawned inside each call and joined before it returns
/// ([`std::thread::scope`]), so jobs may freely borrow from the caller's stack — platform
/// specs, sweep configurations, backend factories — without `Arc` or `'static` bounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerPool {
    config: ExecConfig,
}

impl WorkerPool {
    /// A pool with the given configuration.
    pub fn new(config: ExecConfig) -> Self {
        WorkerPool { config }
    }

    /// The number of workers the pool will run.
    pub fn threads(&self) -> usize {
        self.config.resolved_threads()
    }

    /// Order-preserving parallel map: see [`par_map_with`].
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Send + Sync,
    {
        par_map_with(&self.config, items, f)
    }
}

/// Maps `f` over `items` with the process-default worker count, preserving input order.
///
/// Equivalent to [`par_map_with`] with [`ExecConfig::default`].
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Send + Sync,
{
    par_map_with(&ExecConfig::default(), items, f)
}

/// Maps `f(index, item)` over `items` on a scoped worker pool and returns the results **in
/// input order**, regardless of how the items were scheduled across workers.
///
/// * Workers pull items from a shared queue, so costly items do not serialize behind cheap
///   ones; with one worker (or one item) the map runs inline on the caller's thread, making
///   the sequential and parallel paths take literally the same code path through `f`.
/// * `f` must be deterministic per `(index, item)` for the *output* to be deterministic —
///   the pool guarantees ordering, not the purity of the closure.
/// * Called from inside a `mess-exec` worker (see [`in_worker`]), the map runs inline
///   regardless of `config`: the configured worker count caps the *process*, it does not
///   multiply per nesting level.
///
/// # Panics
///
/// If `f` panics for any item, the pool cancels: workers finish their in-flight items but
/// pull nothing further from the queue, and the earliest-indexed captured panic is resumed
/// on the caller's thread (for the canonical "item 0 is broken" case that is the same panic
/// the sequential path would have surfaced first, without first paying for the rest of the
/// sweep).
pub fn par_map_with<T, R, F>(config: &ExecConfig, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Send + Sync,
{
    let n = items.len();
    let workers = if in_worker() {
        1
    } else {
        config.resolved_threads().min(n).max(1)
    };
    if workers == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Metrics are one relaxed load when observability is off; when on, the gauge tracks
    // not-yet-pulled items (add n, dec per pull, drain the remainder after the scope so a
    // cancelled run leaves the gauge balanced).
    let metrics = crate::obs::ExecMetrics::if_enabled();
    let map_start = metrics.map(|m| {
        m.queue_depth.add(n as i64);
        std::time::Instant::now()
    });

    let queue = Mutex::new(items.into_iter().enumerate());
    let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    // Set by the first worker that catches a panic: the run is doomed (the panic will be
    // resumed), so the other workers stop pulling fresh items instead of burning wall-clock
    // on simulations whose results will never be returned.
    let cancelled = std::sync::atomic::AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            let cancelled = &cancelled;
            scope.spawn(move || {
                let _mark = WorkerMark::enter();
                while !cancelled.load(Ordering::Relaxed) {
                    // Take the next item while holding the lock only for the pull itself.
                    let Some((index, item)) = queue.lock().expect("work queue poisoned").next()
                    else {
                        return;
                    };
                    if let (Some(m), Some(start)) = (metrics, map_start) {
                        m.items.inc();
                        m.queue_depth.dec();
                        m.wait.observe(start.elapsed().as_secs_f64());
                    }
                    let run_start = metrics.map(|_| std::time::Instant::now());
                    let result = catch_unwind(AssertUnwindSafe(|| f(index, item)));
                    if let (Some(m), Some(start)) = (metrics, run_start) {
                        m.run.observe(start.elapsed().as_secs_f64());
                    }
                    if result.is_err() {
                        cancelled.store(true, Ordering::Relaxed);
                    }
                    if tx.send((index, result)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        for (index, result) in rx {
            match result {
                Ok(value) => slots[index] = Some(value),
                Err(payload) => match &first_panic {
                    Some((seen, _)) if *seen < index => {}
                    _ => first_panic = Some((index, payload)),
                },
            }
        }
    });

    if let Some(m) = metrics {
        let leftover = queue.lock().expect("work queue poisoned").len();
        m.queue_depth.add(-(leftover as i64));
    }
    if let Some((_, payload)) = first_panic {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every input index produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_input_order() {
        // Make early items the slowest so a naive completion-order collect would reverse.
        let items: Vec<u64> = (0..64).collect();
        let out = par_map_with(&ExecConfig::with_threads(8), items, |i, x| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            x * 2
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn every_thread_count_yields_identical_output() {
        let work = |threads| {
            par_map_with(
                &ExecConfig::with_threads(threads),
                (0..100).collect(),
                |i, x: u64| (i as u64) ^ x.wrapping_mul(0x9E3779B97F4A7C15),
            )
        };
        let reference = work(1);
        for threads in [2, 3, 8, 32] {
            assert_eq!(work(threads), reference, "{threads} threads diverged");
        }
    }

    #[test]
    fn single_item_runs_inline() {
        let caller = std::thread::current().id();
        let out = par_map_with(&ExecConfig::with_threads(16), vec![1], |_, x: u32| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn all_items_run_exactly_once() {
        let count = AtomicU64::new(0);
        let sum: u64 = par_map_with(
            &ExecConfig::with_threads(7),
            (1..=1000u64).collect(),
            |_, x| {
                count.fetch_add(1, Ordering::Relaxed);
                x
            },
        )
        .into_iter()
        .sum();
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(sum, 500_500);
    }

    #[test]
    fn jobs_may_borrow_from_the_caller() {
        // The scoped pool must accept non-'static borrows (specs, factories, configs).
        let base = vec![10u64, 20, 30];
        let out = par_map_with(&ExecConfig::with_threads(2), vec![0usize, 1, 2], |_, i| {
            base[i]
        });
        assert_eq!(out, base);
    }

    #[test]
    fn panic_of_the_smallest_index_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(
                &ExecConfig::with_threads(4),
                (0..32).collect(),
                |i, _x: u64| {
                    if i == 3 || i == 20 {
                        panic!("boom at {i}");
                    }
                    i
                },
            )
        }));
        let payload = result.expect_err("the worker panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(message, "boom at 3");
    }

    #[test]
    fn panic_cancels_the_remaining_queue() {
        let executed = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_map_with(
                &ExecConfig::with_threads(4),
                (0..64).collect(),
                |i, _x: u64| {
                    executed.fetch_add(1, Ordering::SeqCst);
                    if i == 0 {
                        panic!("first item is broken");
                    }
                    // Slow enough that the cancellation flag is set while the first wave of
                    // items is still in flight.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                },
            )
        }));
        assert!(result.is_err(), "the panic must propagate");
        assert!(
            executed.load(Ordering::SeqCst) < 64,
            "workers must stop pulling fresh items once the run is doomed, ran {}",
            executed.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn nested_par_map_runs_inline_capping_total_threads() {
        use std::collections::HashSet;
        use std::thread::ThreadId;
        // The outer map gets 4 workers; each item runs another "4-worker" map. Without the
        // nesting guard this would spawn up to 16 inner threads; with it, every inner item
        // must execute on its outer worker's thread.
        let distinct: HashSet<ThreadId> = par_map_with(
            &ExecConfig::with_threads(4),
            (0..8).collect::<Vec<u32>>(),
            |_, _| {
                assert!(in_worker(), "outer closures run on marked pool workers");
                let inner_threads = par_map_with(
                    &ExecConfig::with_threads(4),
                    (0..4).collect::<Vec<u32>>(),
                    |_, _| std::thread::current().id(),
                );
                let here = std::thread::current().id();
                assert!(
                    inner_threads.iter().all(|id| *id == here),
                    "nested maps must run inline on the outer worker"
                );
                here
            },
        )
        .into_iter()
        .collect();
        assert!(distinct.len() <= 4, "outer pool stayed within its cap");
        assert!(!in_worker(), "the caller's thread is not a worker");
    }

    #[test]
    fn default_threads_round_trips_and_resolves() {
        // Serialize against other tests touching the global via a local lock-step: the
        // global is process-wide, so restore it before leaving.
        set_default_threads(3);
        assert_eq!(default_threads(), 3);
        assert_eq!(ExecConfig::default().resolved_threads(), 3);
        set_default_threads(0);
        assert!(default_threads() >= 1);
        assert_eq!(ExecConfig::sequential().resolved_threads(), 1);
        assert_eq!(ExecConfig::with_threads(5).resolved_threads(), 5);
    }

    #[test]
    fn with_default_threads_overrides_then_restores() {
        // Run on a private thread so the process-wide DEFAULT_THREADS poked by other tests
        // cannot interfere with the thread-local under test.
        std::thread::spawn(|| {
            let outside = default_threads();
            let inside = with_default_threads(3, || {
                assert_eq!(default_threads(), 3);
                assert_eq!(ExecConfig::default().resolved_threads(), 3);
                // Nested overrides shadow and restore like a stack.
                with_default_threads(2, || assert_eq!(default_threads(), 2));
                default_threads()
            });
            assert_eq!(inside, 3);
            assert_eq!(default_threads(), outside, "override must not leak");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn with_default_threads_restores_on_panic() {
        std::thread::spawn(|| {
            let outside = default_threads();
            let result = catch_unwind(AssertUnwindSafe(|| {
                with_default_threads(7, || panic!("boom"));
            }));
            assert!(result.is_err());
            assert_eq!(default_threads(), outside);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn override_caps_the_fanout_of_this_thread_only() {
        use std::collections::HashSet;
        use std::thread::ThreadId;
        std::thread::spawn(|| {
            let distinct: HashSet<ThreadId> = with_default_threads(1, || {
                par_map((0..16).collect(), |_, _x: u32| std::thread::current().id())
            })
            .into_iter()
            .collect();
            assert_eq!(distinct.len(), 1, "a 1-thread override must run inline");
        })
        .join()
        .unwrap();
    }

    #[test]
    fn worker_pool_reports_threads_and_maps() {
        let pool = WorkerPool::new(ExecConfig::with_threads(2));
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.map(vec![1, 2, 3], |_, x: u32| x * x), vec![1, 4, 9]);
    }
}
