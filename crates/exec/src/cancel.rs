//! Cooperative cancellation for queued and fanned-out work.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between whoever schedules work (a
//! campaign runner, the `mess-serve` daemon) and whoever might want to stop it (an HTTP
//! `DELETE`, a shutdown path). Cancellation is *cooperative* and coarse-grained: it stops
//! work that has not been dispatched yet — a [`JobGraph::run_with_cancel`] stops handing
//! out ready jobs, a queued daemon run never starts — but never interrupts a job already
//! executing, so partial, non-deterministic results can never be observed.
//!
//! [`JobGraph::run_with_cancel`]: crate::JobGraph::run_with_cancel

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag. Clones observe the same flag; the default token is
/// not cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone of the token.
    pub fn cancel(&self) {
        let was_cancelled = self.flag.swap(true, Ordering::SeqCst);
        if !was_cancelled {
            if let Some(m) = crate::obs::ExecMetrics::if_enabled() {
                m.cancels.inc();
            }
        }
    }

    /// `true` once any clone has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        // Cancelling twice is fine.
        token.cancel();
        assert!(clone.is_cancelled());
    }

    #[test]
    fn fresh_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
