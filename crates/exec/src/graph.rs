//! A small job-graph runner for heterogeneous jobs with dependencies and progress reporting.
//!
//! [`par_map`](crate::par_map) covers the homogeneous case (one closure, many inputs); the
//! graph runner covers campaigns of *different* jobs — "run every experiment driver", "sweep
//! these three platforms then aggregate" — where some jobs must wait for others and the
//! caller wants to narrate progress (the harness prints one line per started/finished job).
//!
//! Scheduling is deterministic in its *choices*: ready jobs are dispatched in insertion
//! order, and results are returned in insertion order. Only the interleaving of progress
//! events depends on timing, which is inherent to reporting on concurrent work.

use crate::cancel::CancelToken;
use crate::pool::ExecConfig;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Mutex};

/// Identifier of a job inside one [`JobGraph`] (its insertion index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(usize);

impl JobId {
    /// The insertion index of the job.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// A progress event delivered to the callback passed to [`JobGraph::run`].
///
/// Events for one job always arrive as `Started` then `Finished`; events of different jobs
/// interleave according to the actual execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEvent<'a> {
    /// A worker picked the job up and is executing it (queued-but-waiting jobs emit
    /// nothing, so at most `threads` jobs are "started but not finished" at a time).
    Started {
        /// Which job.
        id: JobId,
        /// The job's name.
        name: &'a str,
    },
    /// The job's closure returned successfully (a panicking job emits no `Finished` event —
    /// its panic is resumed on the caller once the dispatched jobs drain).
    Finished {
        /// Which job.
        id: JobId,
        /// The job's name.
        name: &'a str,
        /// Jobs completed so far, including this one.
        completed: usize,
        /// Total jobs in the graph.
        total: usize,
    },
}

/// Error returned by [`JobGraph::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The dependency relation contains a cycle (or an edge to an unknown job), so some jobs
    /// can never become ready. Carries the names of the stuck jobs.
    DependencyCycle(Vec<String>),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::DependencyCycle(names) => {
                write!(
                    f,
                    "job dependencies never resolve for: {}",
                    names.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for GraphError {}

struct Job<'scope, R> {
    name: String,
    deps: Vec<JobId>,
    work: Box<dyn FnOnce() -> R + Send + 'scope>,
}

/// What a pool worker reports back to the scheduling thread.
enum WorkerMessage<R> {
    /// The worker picked the job up (it was executing as of this message).
    Started(usize),
    /// The job's closure returned or panicked.
    Done(usize, std::thread::Result<R>),
}

/// A set of heterogeneous jobs with dependencies, executed on a scoped worker pool.
///
/// ```
/// use mess_exec::{ExecConfig, JobGraph};
///
/// let mut graph = JobGraph::new();
/// let a = graph.add_job("a", &[], || 1);
/// let b = graph.add_job("b", &[], || 2);
/// let _sum = graph.add_job("sum", &[a, b], || 3);
/// let results = graph.run(&ExecConfig::with_threads(2), |_event| {}).unwrap();
/// assert_eq!(results, vec![1, 2, 3]);
/// ```
pub struct JobGraph<'scope, R> {
    jobs: Vec<Job<'scope, R>>,
}

impl<'scope, R: Send + 'scope> Default for JobGraph<'scope, R> {
    fn default() -> Self {
        JobGraph::new()
    }
}

impl<'scope, R: Send + 'scope> JobGraph<'scope, R> {
    /// An empty graph.
    pub fn new() -> Self {
        JobGraph { jobs: Vec::new() }
    }

    /// Number of jobs added so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when no jobs were added.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Adds a job that runs after every job in `deps` has finished; returns its id.
    pub fn add_job(
        &mut self,
        name: impl Into<String>,
        deps: &[JobId],
        work: impl FnOnce() -> R + Send + 'scope,
    ) -> JobId {
        self.jobs.push(Job {
            name: name.into(),
            deps: deps.to_vec(),
            work: Box::new(work),
        });
        JobId(self.jobs.len() - 1)
    }

    /// Runs every job, respecting dependencies, on `config.resolved_threads()` workers, and
    /// returns the results in insertion order.
    ///
    /// `progress` is invoked on the caller's thread only (no `Sync` required) — once when a
    /// job is dispatched and once when it finishes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DependencyCycle`] when dependencies can never resolve. The
    /// cycle is detected before anything runs; no job executes in that case.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is resumed on the caller's thread after the already
    /// dispatched jobs have drained; no dependent of the panicking job is started.
    pub fn run(
        self,
        config: &ExecConfig,
        progress: impl FnMut(JobEvent<'_>),
    ) -> Result<Vec<R>, GraphError> {
        let slots = self.run_with_cancel(config, &CancelToken::new(), progress)?;
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("uncancelled acyclic graphs complete every job"))
            .collect())
    }

    /// [`JobGraph::run`] with a cooperative cancellation token: once `cancel` fires, no
    /// further ready job is dispatched (jobs already executing run to completion, so no
    /// partial results are ever observed). Returns one slot per job in insertion order —
    /// `None` for jobs that never ran because of the cancellation (or because a
    /// dependency panicked).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::DependencyCycle`] when dependencies can never resolve,
    /// detected before anything runs.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic is resumed on the caller's thread after the already
    /// dispatched jobs have drained, exactly as in [`JobGraph::run`].
    pub fn run_with_cancel(
        self,
        config: &ExecConfig,
        cancel: &CancelToken,
        mut progress: impl FnMut(JobEvent<'_>),
    ) -> Result<Vec<Option<R>>, GraphError> {
        let (mut waiting, unblocks, mut ready) = self.plan()?;
        let total = self.jobs.len();
        if total == 0 {
            return Ok(Vec::new());
        }
        let names: Vec<String> = self.jobs.iter().map(|j| j.name.clone()).collect();
        let metrics = crate::obs::ExecMetrics::if_enabled();

        // Like par_map, a graph run from inside a mess-exec worker degrades to one worker:
        // the configured count caps the process, it does not multiply per nesting level.
        let workers = if crate::pool::in_worker() {
            1
        } else {
            config.resolved_threads().min(total).max(1)
        };
        let mut work: Vec<Option<Box<dyn FnOnce() -> R + Send + 'scope>>> =
            self.jobs.into_iter().map(|j| Some(j.work)).collect();
        let mut slots: Vec<Option<R>> = Vec::with_capacity(total);
        slots.resize_with(total, || None);
        let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;

        if workers == 1 {
            // Inline path: jobs execute in ready order on the caller's thread — no worker
            // threads, no channels. This is what makes nested graph runs (and --threads 1
            // campaigns) truly sequential. Like the parallel path after a panic, remaining
            // ready jobs still run; only the panicking job's dependents never become ready.
            let mut completed = 0usize;
            while let Some(index) = ready.pop_front() {
                if cancel.is_cancelled() {
                    break;
                }
                let job = work[index].take().expect("jobs are dispatched once");
                progress(JobEvent::Started {
                    id: JobId(index),
                    name: &names[index],
                });
                if let Some(m) = metrics {
                    m.graph_jobs.inc();
                }
                let run_start = metrics.map(|_| std::time::Instant::now());
                let result = catch_unwind(AssertUnwindSafe(job));
                if let (Some(m), Some(start)) = (metrics, run_start) {
                    m.run.observe(start.elapsed().as_secs_f64());
                }
                match result {
                    Ok(value) => {
                        completed += 1;
                        progress(JobEvent::Finished {
                            id: JobId(index),
                            name: &names[index],
                            completed,
                            total,
                        });
                        slots[index] = Some(value);
                        for &next in &unblocks[index] {
                            waiting[next] -= 1;
                            if waiting[next] == 0 {
                                ready.push_back(next);
                            }
                        }
                    }
                    Err(payload) => match &first_panic {
                        Some((seen, _)) if *seen < index => {}
                        _ => first_panic = Some((index, payload)),
                    },
                }
            }
            if let Some((_, payload)) = first_panic {
                resume_unwind(payload);
            }
            if let Some(m) = metrics {
                if cancel.is_cancelled() {
                    m.skipped
                        .add(slots.iter().filter(|slot| slot.is_none()).count() as u64);
                }
            }
            return Ok(slots);
        }

        // Jobs flow to workers over one channel, pickup/completion messages flow back over
        // another; the caller's thread is the scheduler, so the progress callback needs
        // neither Send nor Sync.
        let (job_tx, job_rx) = mpsc::channel::<(usize, Box<dyn FnOnce() -> R + Send + 'scope>)>();
        let job_rx = Mutex::new(job_rx);
        let (done_tx, done_rx) = mpsc::channel::<WorkerMessage<R>>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let done_tx = done_tx.clone();
                let job_rx = &job_rx;
                scope.spawn(move || {
                    let _mark = crate::pool::WorkerMark::enter();
                    loop {
                        let message = job_rx.lock().expect("job queue poisoned").recv();
                        let Ok((index, work)) = message else { return };
                        if done_tx.send(WorkerMessage::Started(index)).is_err() {
                            return;
                        }
                        let run_start = metrics.map(|_| std::time::Instant::now());
                        let result = catch_unwind(AssertUnwindSafe(work));
                        if let (Some(m), Some(start)) = (metrics, run_start) {
                            m.run.observe(start.elapsed().as_secs_f64());
                        }
                        if done_tx.send(WorkerMessage::Done(index, result)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(done_tx);

            let mut in_flight = 0usize;
            let mut completed = 0usize;
            loop {
                // Enqueue everything ready, in insertion order; `Started` is emitted when a
                // worker actually picks a job up, not here at enqueue time. A fired cancel
                // token stops dispatch — in-flight jobs drain, the rest stay `None`.
                while !cancel.is_cancelled() {
                    let Some(index) = ready.pop_front() else {
                        break;
                    };
                    let work = work[index].take().expect("jobs are dispatched once");
                    job_tx
                        .send((index, work))
                        .expect("workers outlive dispatch");
                    in_flight += 1;
                }
                if in_flight == 0 {
                    break;
                }
                match done_rx.recv().expect("workers outlive collection") {
                    WorkerMessage::Started(index) => {
                        if let Some(m) = metrics {
                            m.graph_jobs.inc();
                        }
                        progress(JobEvent::Started {
                            id: JobId(index),
                            name: &names[index],
                        });
                    }
                    WorkerMessage::Done(index, Ok(value)) => {
                        in_flight -= 1;
                        completed += 1;
                        progress(JobEvent::Finished {
                            id: JobId(index),
                            name: &names[index],
                            completed,
                            total,
                        });
                        slots[index] = Some(value);
                        for &next in &unblocks[index] {
                            waiting[next] -= 1;
                            if waiting[next] == 0 {
                                ready.push_back(next);
                            }
                        }
                    }
                    // A panicked job emits no Finished event — narrating it as finished
                    // would misreport which job is about to abort the run.
                    WorkerMessage::Done(index, Err(payload)) => {
                        in_flight -= 1;
                        match &first_panic {
                            Some((seen, _)) if *seen < index => {}
                            _ => first_panic = Some((index, payload)),
                        }
                    }
                }
            }
            drop(job_tx);
        });

        if let Some((_, payload)) = first_panic {
            resume_unwind(payload);
        }
        if let Some(m) = metrics {
            if cancel.is_cancelled() {
                m.skipped
                    .add(slots.iter().filter(|slot| slot.is_none()).count() as u64);
            }
        }
        Ok(slots)
    }

    /// Builds the scheduling state — per-job outstanding-dependency counts, the reverse
    /// adjacency, and the initially ready queue — and validates it with Kahn's algorithm so
    /// `run` can consume it knowing every job is reachable and every edge in-bounds.
    #[allow(clippy::type_complexity)]
    fn plan(&self) -> Result<(Vec<usize>, Vec<Vec<usize>>, VecDeque<usize>), GraphError> {
        let total = self.jobs.len();
        // Edges to unknown ids never resolve (they are not in `unblocks`), so they surface
        // as stuck jobs rather than being silently dropped.
        let waiting: Vec<usize> = self.jobs.iter().map(|j| j.deps.len()).collect();
        let mut unblocks: Vec<Vec<usize>> = vec![Vec::new(); total];
        for (idx, job) in self.jobs.iter().enumerate() {
            for dep in &job.deps {
                if dep.0 < total {
                    unblocks[dep.0].push(idx);
                }
            }
        }
        let ready: VecDeque<usize> = (0..total).filter(|&i| waiting[i] == 0).collect();

        // Kahn's algorithm on a scratch copy; anything left waiting is stuck.
        let mut scratch = waiting.clone();
        let mut queue = ready.clone();
        let mut resolved = 0usize;
        while let Some(index) = queue.pop_front() {
            resolved += 1;
            for &next in &unblocks[index] {
                scratch[next] -= 1;
                if scratch[next] == 0 {
                    queue.push_back(next);
                }
            }
        }
        if resolved == total {
            Ok((waiting, unblocks, ready))
        } else {
            Err(GraphError::DependencyCycle(
                scratch
                    .iter()
                    .enumerate()
                    .filter(|(_, &w)| w > 0)
                    .map(|(i, _)| self.jobs[i].name.clone())
                    .collect(),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_return_in_insertion_order() {
        let mut graph = JobGraph::new();
        for i in 0..16u64 {
            graph.add_job(format!("job{i}"), &[], move || {
                if i % 2 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i * 10
            });
        }
        let results = graph.run(&ExecConfig::with_threads(4), |_| {}).unwrap();
        assert_eq!(results, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn dependencies_order_execution() {
        let order = Mutex::new(Vec::new());
        let record = |tag: &'static str| {
            order.lock().unwrap().push(tag);
        };
        let mut graph = JobGraph::new();
        let a = graph.add_job("a", &[], || record("a"));
        let b = graph.add_job("b", &[a], || record("b"));
        graph.add_job("c", &[a, b], || record("c"));
        graph.run(&ExecConfig::with_threads(4), |_| {}).unwrap();
        assert_eq!(*order.lock().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn independent_jobs_actually_overlap() {
        // Two jobs that each wait for the other to have started can only finish if they run
        // concurrently.
        let gate = AtomicUsize::new(0);
        let sync = |gate: &AtomicUsize| {
            gate.fetch_add(1, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while gate.load(Ordering::SeqCst) < 2 {
                assert!(std::time::Instant::now() < deadline, "jobs did not overlap");
                std::hint::spin_loop();
            }
        };
        let mut graph = JobGraph::new();
        graph.add_job("left", &[], || sync(&gate));
        graph.add_job("right", &[], || sync(&gate));
        graph.run(&ExecConfig::with_threads(2), |_| {}).unwrap();
    }

    #[test]
    fn progress_events_pair_up_and_count() {
        let mut started = Vec::new();
        let mut finished = Vec::new();
        let mut graph = JobGraph::new();
        let a = graph.add_job("first", &[], || ());
        graph.add_job("second", &[a], || ());
        graph
            .run(&ExecConfig::sequential(), |event| match event {
                JobEvent::Started { id, .. } => started.push(id),
                JobEvent::Finished {
                    id,
                    completed,
                    total,
                    ..
                } => {
                    assert_eq!(total, 2);
                    finished.push((id, completed));
                }
            })
            .unwrap();
        assert_eq!(started, vec![JobId(0), JobId(1)]);
        assert_eq!(finished, vec![(JobId(0), 1), (JobId(1), 2)]);
    }

    #[test]
    fn started_fires_at_pickup_not_enqueue() {
        // One worker, three independent jobs: all three are enqueued immediately, but the
        // progress narration must follow actual execution, strictly interleaved.
        let mut events = Vec::new();
        let mut graph = JobGraph::new();
        for i in 0..3 {
            graph.add_job(format!("j{i}"), &[], || ());
        }
        graph
            .run(&ExecConfig::sequential(), |event| match event {
                JobEvent::Started { id, .. } => events.push(("start", id.index())),
                JobEvent::Finished { id, .. } => events.push(("finish", id.index())),
            })
            .unwrap();
        assert_eq!(
            events,
            vec![
                ("start", 0),
                ("finish", 0),
                ("start", 1),
                ("finish", 1),
                ("start", 2),
                ("finish", 2),
            ]
        );
    }

    #[test]
    fn cycles_are_reported_not_deadlocked() {
        let mut graph: JobGraph<'_, ()> = JobGraph::new();
        let _a = graph.add_job("a", &[JobId(1)], || ());
        let _b = graph.add_job("b", &[JobId(0)], || ());
        let err = graph
            .run(&ExecConfig::sequential(), |_| {})
            .expect_err("a cycle must be detected");
        let GraphError::DependencyCycle(names) = err;
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn panic_in_a_job_propagates_and_skips_dependents() {
        let ran_dependent = AtomicUsize::new(0);
        let finished_names = Mutex::new(Vec::new());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut graph = JobGraph::new();
            let a = graph.add_job("bad", &[], || panic!("job failed"));
            graph.add_job("after", &[a], || {
                ran_dependent.fetch_add(1, Ordering::SeqCst);
            });
            graph.add_job("independent", &[], || ());
            graph.run(&ExecConfig::with_threads(2), |event| {
                if let JobEvent::Finished { name, .. } = event {
                    finished_names.lock().unwrap().push(name.to_string());
                }
            })
        }));
        assert!(result.is_err(), "the job panic must propagate");
        assert_eq!(ran_dependent.load(Ordering::SeqCst), 0);
        // The crashed job must not be narrated as finished; the independent one is.
        assert_eq!(*finished_names.lock().unwrap(), vec!["independent"]);
    }

    #[test]
    fn nested_graph_runs_with_one_worker() {
        // A graph launched from inside a pool worker must not fan out a second level.
        let out =
            crate::pool::par_map_with(&ExecConfig::with_threads(2), vec![0u32, 1], |_, item| {
                let mut graph = JobGraph::new();
                graph.add_job("inner-a", &[], move || item * 10);
                graph.add_job("inner-b", &[], move || item * 10 + 1);
                graph.run(&ExecConfig::with_threads(8), |_| {}).unwrap()
            });
        assert_eq!(out, vec![vec![0, 1], vec![10, 11]]);
    }

    #[test]
    fn pre_cancelled_graphs_dispatch_nothing() {
        let ran = AtomicUsize::new(0);
        let mut graph = JobGraph::new();
        for i in 0..4 {
            graph.add_job(format!("j{i}"), &[], || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        let token = CancelToken::new();
        token.cancel();
        let slots = graph
            .run_with_cancel(&ExecConfig::with_threads(2), &token, |_| {})
            .unwrap();
        assert_eq!(slots.len(), 4);
        assert!(slots.iter().all(Option::is_none));
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn cancel_mid_run_skips_undispatched_jobs() {
        // Sequential config: the first job fires the token, so the second never runs.
        let token = CancelToken::new();
        let fire = token.clone();
        let mut graph = JobGraph::new();
        graph.add_job("first", &[], move || {
            fire.cancel();
            1u32
        });
        graph.add_job("second", &[], || 2u32);
        let slots = graph
            .run_with_cancel(&ExecConfig::sequential(), &token, |_| {})
            .unwrap();
        assert_eq!(slots, vec![Some(1), None]);
    }

    #[test]
    fn run_with_cancel_without_cancelling_matches_run() {
        let mut graph = JobGraph::new();
        let a = graph.add_job("a", &[], || 1u32);
        graph.add_job("b", &[a], || 2u32);
        let slots = graph
            .run_with_cancel(&ExecConfig::with_threads(2), &CancelToken::new(), |_| {})
            .unwrap();
        assert_eq!(slots, vec![Some(1), Some(2)]);
    }

    #[test]
    fn empty_graph_returns_empty_results() {
        let graph: JobGraph<'_, u32> = JobGraph::new();
        assert!(graph.is_empty());
        let results = graph.run(&ExecConfig::default(), |_| {}).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn jobs_borrow_from_the_caller() {
        let inputs = [3u64, 4];
        let mut graph = JobGraph::new();
        graph.add_job("x", &[], || inputs[0] * 2);
        graph.add_job("y", &[], || inputs[1] * 2);
        let results = graph.run(&ExecConfig::with_threads(2), |_| {}).unwrap();
        assert_eq!(results, vec![6, 8]);
    }
}
