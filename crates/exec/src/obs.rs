//! `mess-exec`'s metric handles, registered once into the global `mess-obs` registry.
//!
//! Everything here is gated by the caller on [`mess_obs::enabled`] — the pool and graph
//! runners take one relaxed-load branch when observability is off and never touch these
//! handles. The gauge discipline is add/sub (never `set`), so concurrent pools and
//! graphs in one process compose into a meaningful process-wide backlog figure.

use std::sync::OnceLock;

use mess_obs::{Counter, Gauge, Histogram, Registry, DEFAULT_LATENCY_BUCKETS};
use std::sync::Arc;

pub(crate) struct ExecMetrics {
    /// `mess_exec_pool_items_total`: items executed by `par_map` pools (parallel path).
    pub items: Arc<Counter>,
    /// `mess_exec_queue_depth`: items currently sitting in pull queues, not yet picked up.
    pub queue_depth: Arc<Gauge>,
    /// `mess_exec_job_wait_seconds`: time from map start to an item's pickup.
    pub wait: Arc<Histogram>,
    /// `mess_exec_job_run_seconds`: closure execution time per item/job.
    pub run: Arc<Histogram>,
    /// `mess_exec_graph_jobs_total`: graph jobs dispatched to a worker (or run inline).
    pub graph_jobs: Arc<Counter>,
    /// `mess_exec_jobs_skipped_total`: graph jobs never dispatched because a cancel fired.
    pub skipped: Arc<Counter>,
    /// `mess_exec_cancels_total`: cancel tokens fired (first `cancel()` per token).
    pub cancels: Arc<Counter>,
}

impl ExecMetrics {
    /// The process-wide handles; registration happens exactly once.
    pub(crate) fn get() -> &'static ExecMetrics {
        static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
        METRICS.get_or_init(|| {
            let registry = Registry::global();
            let expect = "mess_exec metric names are registered once";
            ExecMetrics {
                items: registry
                    .counter(
                        "mess_exec_pool_items_total",
                        "Items executed by parallel par_map pools",
                    )
                    .expect(expect),
                queue_depth: registry
                    .gauge(
                        "mess_exec_queue_depth",
                        "Items waiting in pull queues, not yet picked up by a worker",
                    )
                    .expect(expect),
                wait: registry
                    .histogram(
                        "mess_exec_job_wait_seconds",
                        "Time from map start to item pickup",
                        DEFAULT_LATENCY_BUCKETS,
                    )
                    .expect(expect),
                run: registry
                    .histogram(
                        "mess_exec_job_run_seconds",
                        "Per-item/job closure execution time",
                        DEFAULT_LATENCY_BUCKETS,
                    )
                    .expect(expect),
                graph_jobs: registry
                    .counter(
                        "mess_exec_graph_jobs_total",
                        "Graph jobs dispatched (including inline execution)",
                    )
                    .expect(expect),
                skipped: registry
                    .counter(
                        "mess_exec_jobs_skipped_total",
                        "Graph jobs never dispatched because a cancel token fired",
                    )
                    .expect(expect),
                cancels: registry
                    .counter(
                        "mess_exec_cancels_total",
                        "Cancel tokens fired (first cancel() per token)",
                    )
                    .expect(expect),
            }
        })
    }

    /// The handles when observability is enabled, `None` (one relaxed load) otherwise.
    pub(crate) fn if_enabled() -> Option<&'static ExecMetrics> {
        mess_obs::enabled().then(ExecMetrics::get)
    }
}
