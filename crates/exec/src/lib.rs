//! `mess-exec`: deterministic parallel execution for sweeps, experiments and validation runs.
//!
//! The Mess methodology is embarrassingly parallel at the *point* level: a characterization
//! is tens of independent (store-mix, pause) simulations, and a paper figure is a bag of
//! independent per-platform or per-workload legs. This crate turns that structure into
//! wall-clock speedup without sacrificing the framework's reproducibility guarantees:
//!
//! * [`par_map`] / [`par_map_with`] / [`WorkerPool`] — an order-preserving parallel map over
//!   a scoped worker pool (`std::thread::scope` + `std::sync::mpsc`). Results come back **in
//!   input order regardless of scheduling**, so curve families and CSV files are
//!   byte-identical at any thread count.
//! * [`JobGraph`] — a runner for heterogeneous jobs with dependencies and progress
//!   callbacks, used by the harness to execute `--experiment all` and narrate per-job
//!   progress.
//! * [`ExecConfig`] / [`set_default_threads`] — the worker-count knob. It defaults to
//!   [`std::thread::available_parallelism`]; the harness `--threads N` flag sets the
//!   process-wide default so every driver inherits it.
//!
//! The crate is deliberately **std-only** (no rayon/crossbeam): the jobs it schedules are
//! whole simulations — milliseconds to minutes each — so a pull queue over a mutex plus one
//! result channel is already within noise of a work-stealing runtime, and the framework
//! keeps building in offline environments.
//!
//! # When to parallelize (and when not to)
//!
//! Reach for this crate when **all** of the following hold:
//!
//! 1. **The jobs are independent simulations.** Each worker must build its *own* backend and
//!    `Engine` (see the factory pattern below). Sharing one mutable backend across points is
//!    exactly the coupling that forced the old sequential sweep.
//! 2. **Each job is coarse.** A sweep point simulates hundreds of thousands of cycles;
//!    that dwarfs the ~µs of queue/channel overhead per item. Do *not* `par_map` over
//!    per-request or per-cycle work — the engine's inner loop stays sequential by design.
//! 3. **Determinism is preserved per job.** The pool guarantees output *ordering*; each
//!    closure must itself be a pure function of its `(index, item)` input (seeded RNG, no
//!    shared mutable state, no wall-clock dependence) for end-to-end byte-identical output.
//!
//! Prefer the sequential path (`ExecConfig::sequential()`, or just a `for` loop) when jobs
//! are sub-millisecond or when they contend on one resource (a shared trace file, one
//! recording backend). Nesting, on the other hand, is safe by construction: a parallel call
//! made *inside* a pool worker runs inline (see [`in_worker`]), so the configured worker
//! count is a process-wide cap — `--threads 4` means four simulation threads, not four per
//! nesting level.
//!
//! # The factory pattern
//!
//! Parallel callers hand out a `Send + Sync` *factory* and let each worker build privately:
//!
//! ```
//! use mess_exec::{par_map_with, ExecConfig};
//!
//! struct Backend {
//!     latency: u64,
//! }
//! let factory = || Backend { latency: 100 }; // Send + Sync: capture only shared config
//! let points = vec![0u32, 20, 40];
//! let results = par_map_with(&ExecConfig::with_threads(2), points, |_, pause| {
//!     let backend = factory(); // built inside the worker: no Send needed on Backend itself
//!     backend.latency + pause as u64
//! });
//! assert_eq!(results, vec![100, 120, 140]);
//! ```
//!
//! `mess_bench::characterize` and the `mess-platforms` model factory follow this shape: the
//! factory captures only the (shared, immutable) platform spec, the backend lives and dies
//! on the worker thread.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod cancel;
pub mod graph;
mod obs;
pub mod pool;

pub use cancel::CancelToken;
pub use graph::{GraphError, JobEvent, JobGraph, JobId};
pub use pool::{
    default_threads, in_worker, par_map, par_map_with, set_default_threads, with_default_threads,
    ExecConfig, WorkerPool,
};
