//! v2 protocol conformance for the cycle-level DRAM system and the approximate
//! external-simulator stand-ins.

use mess_dram::{ApproxDramSim, ApproxProfile, DramConfig, DramPreset, DramSystem};
use mess_types::{conformance, Bandwidth, Frequency};

#[test]
fn detailed_dram_system_conforms() {
    conformance::check(|| {
        DramSystem::new(DramConfig::new(
            DramPreset::Ddr4_2666,
            6,
            Frequency::from_ghz(2.0),
        ))
    });
}

#[test]
fn single_channel_dram_system_conforms() {
    // One channel concentrates all traffic: the deepest queues and the most back-pressure.
    conformance::check(|| {
        DramSystem::new(DramConfig::new(
            DramPreset::Ddr4_2666,
            1,
            Frequency::from_ghz(2.0),
        ))
    });
}

#[test]
fn approx_simulators_conform() {
    for profile in ApproxProfile::ALL {
        conformance::check(|| {
            ApproxDramSim::new(
                profile,
                Bandwidth::from_gbs(128.0),
                Frequency::from_ghz(2.0),
            )
        });
    }
}

#[test]
fn dram_backends_are_send_at_the_type_level() {
    // The parallel sweep builds these models inside mess-exec workers; a non-Send field
    // would fail this test at compile time instead of deep inside a harness driver.
    fn assert_send<T: Send>() {}
    assert_send::<DramSystem>();
    assert_send::<ApproxDramSim>();
}
