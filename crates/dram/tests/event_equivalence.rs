//! Equivalence regression for the event-driven DRAM rewrite.
//!
//! Drives two identical [`DramSystem`]s through the same randomized request schedule: one
//! through the production event engine (`tick` jumped straight between `next_event` cycles),
//! one through the retained cycle-by-cycle reference scheduler
//! ([`DramSystem::tick_reference`]). Per-request completion cycles, row-buffer outcomes and
//! the cumulative statistics must be bit-identical — the event engine is an optimization,
//! never a model change.

use mess_dram::{DramConfig, DramPreset, DramSystem};
use mess_types::{AccessKind, Completion, Cycle, Frequency, MemoryBackend, Request, RequestId};

/// Deterministic splitmix-style generator (no dependency on the rand stand-in's evolution).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// One scheduled batch: at `cycle`, offer `batch`.
struct Step {
    cycle: u64,
    batch: Vec<Request>,
}

/// A random mix of latency-bound singles, streaming bursts, write-heavy phases and long idle
/// gaps (to cross refresh deadlines), deterministic per seed.
fn random_schedule(seed: u64, requests: usize) -> Vec<Step> {
    let mut rng = Mix(seed);
    let mut steps = Vec::new();
    let mut id = 0u64;
    let mut cycle = 0u64;
    while (id as usize) < requests {
        let phase = rng.below(4);
        let (burst, gap) = match phase {
            // Pointer-chase regime: single requests, long dead time.
            0 => (1, 200 + rng.below(900)),
            // Streaming bursts back to back.
            1 => (1 + rng.below(16), 1 + rng.below(6)),
            // Write-drain pressure: enough writes to cross the high watermark.
            2 => (8 + rng.below(24), 2 + rng.below(8)),
            // Idle gap past a refresh interval.
            _ => (1, 10_000 + rng.below(30_000)),
        };
        let mut batch = Vec::new();
        for _ in 0..burst {
            if id as usize >= requests {
                break;
            }
            let addr = match rng.below(3) {
                // Sequential run (row hits).
                0 => (id % 512) * 64,
                // Strided conflicts.
                1 => rng.below(64) * 0x8_0000,
                // Uniform random.
                _ => rng.below(1 << 24) * 64,
            };
            // Write-heavy in the drain-pressure phase, ~25 % writes elsewhere.
            let roll = rng.below(8);
            let kind = if (phase == 2 && roll < 4) || roll == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            batch.push(Request {
                id: RequestId(id),
                addr,
                kind,
                issue_cycle: Cycle::new(cycle),
                core: (id % 8) as u32,
            });
            id += 1;
        }
        steps.push(Step { cycle, batch });
        cycle += gap;
    }
    steps
}

/// What one drive observed, keyed for exact comparison.
struct Observed {
    /// (request id, completion cycle) in drain order.
    completions: Vec<(u64, u64)>,
    accepted: Vec<u64>,
    stats: mess_types::MemoryStats,
    row_stats: mess_types::RowBufferStats,
}

fn drive(sys: &mut DramSystem, steps: &[Step], event_driven: bool) -> Observed {
    let mut completions = Vec::new();
    let mut accepted = Vec::new();
    let mut buf: Vec<Completion> = Vec::new();
    let mut now = 0u64;
    let mut step_idx = 0usize;
    let horizon = steps.last().map(|s| s.cycle).unwrap_or(0) + 4_000_000;
    loop {
        if event_driven {
            sys.tick(Cycle::new(now));
        } else {
            sys.tick_reference(Cycle::new(now));
        }
        buf.clear();
        sys.drain_completed(&mut buf);
        for c in &buf {
            completions.push((c.id.0, c.complete_cycle.as_u64()));
        }
        while step_idx < steps.len() && steps[step_idx].cycle == now {
            let outcome = sys.issue(&steps[step_idx].batch);
            for r in &steps[step_idx].batch[..outcome.accepted] {
                accepted.push(r.id.0);
            }
            step_idx += 1;
        }
        if step_idx >= steps.len() && sys.pending() == 0 {
            break;
        }
        assert!(now < horizon, "schedule never drained");
        let next_script = steps.get(step_idx).map(|s| s.cycle);
        now = if event_driven {
            let event = sys.next_event().map(|c| c.as_u64());
            match (event, next_script) {
                (Some(e), Some(s)) => e.min(s),
                (Some(e), None) => e,
                (None, Some(s)) => s,
                (None, None) => now + 1,
            }
            .max(now + 1)
        } else {
            now + 1
        };
    }
    Observed {
        completions,
        accepted,
        stats: sys.stats(),
        row_stats: sys.row_stats(),
    }
}

fn assert_equivalent(config: DramConfig, seed: u64, requests: usize) {
    let name = format!("{:?} x{} seed {seed}", config.preset, config.channels);
    let steps = random_schedule(seed, requests);
    let mut event = DramSystem::new(config.clone());
    let mut reference = DramSystem::new(config);
    let a = drive(&mut event, &steps, true);
    let b = drive(&mut reference, &steps, false);
    assert_eq!(
        a.accepted, b.accepted,
        "{name}: acceptance decisions diverged"
    );
    assert_eq!(
        a.completions, b.completions,
        "{name}: per-request completion cycles diverged"
    );
    assert_eq!(a.stats, b.stats, "{name}: statistics diverged");
    assert_eq!(
        a.row_stats, b.row_stats,
        "{name}: row-buffer outcomes diverged"
    );
    assert_eq!(
        a.completions.len(),
        a.accepted.len(),
        "{name}: every accepted request completed"
    );
}

#[test]
fn ddr4_single_channel_event_tick_matches_reference() {
    // One channel concentrates every request: deepest queues, most write-drain churn.
    assert_equivalent(
        DramConfig::new(DramPreset::Ddr4_2666, 1, Frequency::from_ghz(2.0)),
        0xB0BA_CAFE,
        600,
    );
}

#[test]
fn ddr5_dual_channel_event_tick_matches_reference() {
    assert_equivalent(
        DramConfig::new(DramPreset::Ddr5_4800, 2, Frequency::from_ghz(2.5)),
        0x5EED_0001,
        600,
    );
}

#[test]
fn hbm_many_channel_event_tick_matches_reference() {
    assert_equivalent(
        DramConfig::new(DramPreset::Hbm2, 8, Frequency::from_ghz(2.0)),
        0xDEAD_BEEF,
        600,
    );
}

#[test]
fn refreshless_optane_event_tick_matches_reference() {
    // tRFC = 0 disables refresh entirely: the pure command-scheduling path.
    assert_equivalent(
        DramConfig::new(DramPreset::OptaneLike, 2, Frequency::from_ghz(2.0)),
        0x0C7A_AE5C,
        300,
    );
}
