//! Per-bank state machine.
//!
//! Each bank tracks its open row and the earliest cycles at which the next column access,
//! precharge and activate commands may be issued, enforcing tRCD, tRP, tRAS and tWR.

use crate::timing::TimingCycles;
use serde::{Deserialize, Serialize};

/// Row-buffer outcome of an access, before the access is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The requested row is already open.
    Hit,
    /// The bank is precharged; an activate is needed.
    Empty,
    /// A different row is open; precharge + activate are needed.
    Miss,
}

/// State of one DRAM bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bank {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Earliest cycle a column command to the open row may issue (tRCD after activate).
    column_ready: u64,
    /// Earliest cycle a precharge may issue (tRAS after activate, tWR after a write burst).
    precharge_ready: u64,
    /// Earliest cycle an activate may issue (tRP after precharge).
    activate_ready: u64,
}

impl Bank {
    /// Creates a precharged, idle bank.
    pub fn new() -> Self {
        Bank::default()
    }

    /// The currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Classifies an access to `row` against the current bank state.
    pub fn classify(&self, row: u64) -> RowOutcome {
        match self.open_row {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Miss,
            None => RowOutcome::Empty,
        }
    }

    /// Earliest cycle at which a column command for `row` can issue, assuming any required
    /// precharge/activate commands are issued as early as the bank state allows, starting no
    /// earlier than `not_before` (which encodes channel-level constraints such as tRRD/tFAW
    /// and refresh blocking for the activate).
    pub fn earliest_column(&self, row: u64, not_before: u64, t: &TimingCycles) -> u64 {
        match self.classify(row) {
            RowOutcome::Hit => self.column_ready.max(not_before),
            RowOutcome::Empty => {
                let act = self.activate_ready.max(not_before);
                act + t.rcd
            }
            RowOutcome::Miss => {
                let pre = self.precharge_ready.max(not_before);
                let act = (pre + t.rp).max(self.activate_ready);
                act + t.rcd
            }
        }
    }

    /// Performs the access: updates the bank state as if precharge/activate were issued as in
    /// [`Bank::earliest_column`] and the column command issued at `column_cycle`.
    ///
    /// `is_write` controls the write-recovery constraint on the following precharge.
    /// Returns the outcome that was in effect before the access.
    pub fn access(
        &mut self,
        row: u64,
        column_cycle: u64,
        is_write: bool,
        t: &TimingCycles,
    ) -> RowOutcome {
        let outcome = self.classify(row);
        if outcome != RowOutcome::Hit {
            // An activate happened tRCD before the column command.
            let activate_cycle = column_cycle.saturating_sub(t.rcd);
            self.precharge_ready = activate_cycle + t.ras;
            self.open_row = Some(row);
        }
        // Column-to-column spacing within this bank.
        self.column_ready = self.column_ready.max(column_cycle + t.ccd);
        // A write delays the earliest precharge by the write recovery time after its data.
        if is_write {
            self.precharge_ready = self
                .precharge_ready
                .max(column_cycle + t.cwl + t.burst + t.wr);
        } else {
            self.precharge_ready = self.precharge_ready.max(column_cycle + t.cl + t.burst);
        }
        outcome
    }

    /// Closes the bank (refresh or explicit precharge) at `cycle`.
    pub fn precharge(&mut self, cycle: u64, t: &TimingCycles) {
        let pre = self.precharge_ready.max(cycle);
        self.open_row = None;
        self.activate_ready = self.activate_ready.max(pre + t.rp);
    }

    /// Blocks the bank until `cycle` (used for refresh).
    pub fn block_until(&mut self, cycle: u64) {
        self.open_row = None;
        self.activate_ready = self.activate_ready.max(cycle);
        self.column_ready = self.column_ready.max(cycle);
        self.precharge_ready = self.precharge_ready.max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::DramPreset;
    use mess_types::Frequency;

    fn timing() -> TimingCycles {
        DramPreset::Ddr4_2666
            .timing()
            .to_cpu_cycles(Frequency::from_ghz(2.0))
    }

    #[test]
    fn classification_follows_open_row() {
        let t = timing();
        let mut b = Bank::new();
        assert_eq!(b.classify(7), RowOutcome::Empty);
        b.access(7, 100, false, &t);
        assert_eq!(b.open_row(), Some(7));
        assert_eq!(b.classify(7), RowOutcome::Hit);
        assert_eq!(b.classify(8), RowOutcome::Miss);
    }

    #[test]
    fn hit_is_faster_than_empty_is_faster_than_miss() {
        let t = timing();
        // Empty bank.
        let empty = Bank::new().earliest_column(5, 1000, &t);
        // Bank with the target row open and column-ready in the past.
        let mut hitting = Bank::new();
        hitting.access(5, 100, false, &t);
        let hit = hitting.earliest_column(5, 1000, &t);
        // Bank with a different row open.
        let mut missing = Bank::new();
        missing.access(9, 100, false, &t);
        let miss = missing.earliest_column(5, 1000, &t);
        assert!(hit < empty, "hit {hit} should precede empty {empty}");
        assert!(empty < miss, "empty {empty} should precede miss {miss}");
        assert_eq!(empty - 1000, t.rcd);
        assert!(miss - 1000 >= t.rp + t.rcd);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = timing();
        let mut after_read = Bank::new();
        after_read.access(3, 1000, false, &t);
        let mut after_write = Bank::new();
        after_write.access(3, 1000, true, &t);
        // A subsequent miss (to row 4) must precharge, which a write pushes further out.
        let read_next = after_read.earliest_column(4, 1000, &t);
        let write_next = after_write.earliest_column(4, 1000, &t);
        assert!(write_next > read_next);
    }

    #[test]
    fn tras_respected_on_fast_row_switch() {
        let t = timing();
        let mut b = Bank::new();
        b.access(1, 10, false, &t);
        // A miss right away cannot precharge before tRAS expires (activate was at 10 - rcd,
        // clamped to 0, so precharge_ready >= activate + tRAS).
        let col = b.earliest_column(2, 11, &t);
        assert!(col >= t.ras.saturating_sub(t.rcd) + t.rp + t.rcd);
    }

    #[test]
    fn block_until_closes_row_and_delays_everything() {
        let t = timing();
        let mut b = Bank::new();
        b.access(1, 10, false, &t);
        b.block_until(5000);
        assert_eq!(b.open_row(), None);
        assert!(b.earliest_column(1, 0, &t) >= 5000 + t.rcd);
    }

    #[test]
    fn precharge_closes_row() {
        let t = timing();
        let mut b = Bank::new();
        b.access(1, 10, false, &t);
        b.precharge(500, &t);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.classify(1), RowOutcome::Empty);
    }
}
