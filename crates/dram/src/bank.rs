//! Flat, data-oriented per-bank state.
//!
//! Every bank tracks its open row and the earliest cycles at which the next column access,
//! precharge and activate commands may be issued, enforcing tRCD, tRP, tRAS and tWR. The
//! state of all banks of one channel lives in [`BankArray`], a structure-of-arrays keyed by
//! the flat `(rank, bank)` index: the FR-FCFS scheduler scans every queued request against
//! its bank on every issue attempt, and four dense `Vec<u64>` columns keep that scan in a
//! handful of cache lines instead of striding over an array of structs.

use crate::timing::TimingCycles;
use serde::{Deserialize, Serialize};

/// Row-buffer outcome of an access, before the access is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// The requested row is already open.
    Hit,
    /// The bank is precharged; an activate is needed.
    Empty,
    /// A different row is open; precharge + activate are needed.
    Miss,
}

/// Sentinel marking a precharged bank (no open row). Real row indices are derived from
/// physical addresses and never reach this value.
const NO_OPEN_ROW: u64 = u64::MAX;

/// The state of every bank of one channel, as a structure of arrays.
///
/// All four timing columns are indexed by the same flat `(rank, bank)` index the controller
/// computes once per request. Entries are absolute CPU-cycle deadlines; a fresh bank is
/// precharged and idle (all deadlines zero).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankArray {
    /// Currently open row per bank, [`NO_OPEN_ROW`] when precharged.
    open_row: Vec<u64>,
    /// Earliest cycle a column command to the open row may issue (tRCD after activate).
    column_ready: Vec<u64>,
    /// Earliest cycle a precharge may issue (tRAS after activate, tWR after a write burst).
    precharge_ready: Vec<u64>,
    /// Earliest cycle an activate may issue (tRP after precharge).
    activate_ready: Vec<u64>,
}

impl BankArray {
    /// Creates `n` precharged, idle banks.
    pub fn new(n: usize) -> Self {
        BankArray {
            open_row: vec![NO_OPEN_ROW; n],
            column_ready: vec![0; n],
            precharge_ready: vec![0; n],
            activate_ready: vec![0; n],
        }
    }

    /// Number of banks.
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// `true` when the array holds no banks.
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// The currently open row of bank `i`, if any.
    pub fn open_row(&self, i: usize) -> Option<u64> {
        match self.open_row[i] {
            NO_OPEN_ROW => None,
            row => Some(row),
        }
    }

    /// Classifies an access to `row` against the current state of bank `i`.
    pub fn classify(&self, i: usize, row: u64) -> RowOutcome {
        match self.open_row[i] {
            NO_OPEN_ROW => RowOutcome::Empty,
            open if open == row => RowOutcome::Hit,
            _ => RowOutcome::Miss,
        }
    }

    /// Earliest cycle at which a column command for `row` can issue on bank `i`, assuming any
    /// required precharge/activate commands are issued as early as the bank state allows,
    /// starting no earlier than `not_before` (which encodes channel-level constraints such as
    /// tRRD/tFAW and refresh blocking for the activate).
    pub fn earliest_column(&self, i: usize, row: u64, not_before: u64, t: &TimingCycles) -> u64 {
        match self.classify(i, row) {
            RowOutcome::Hit => self.column_ready[i].max(not_before),
            RowOutcome::Empty => {
                let act = self.activate_ready[i].max(not_before);
                act + t.rcd
            }
            RowOutcome::Miss => {
                let pre = self.precharge_ready[i].max(not_before);
                let act = (pre + t.rp).max(self.activate_ready[i]);
                act + t.rcd
            }
        }
    }

    /// Performs the access on bank `i`: updates the bank state as if precharge/activate were
    /// issued as in [`BankArray::earliest_column`] and the column command issued at
    /// `column_cycle`.
    ///
    /// `is_write` controls the write-recovery constraint on the following precharge.
    /// Returns the outcome that was in effect before the access.
    pub fn access(
        &mut self,
        i: usize,
        row: u64,
        column_cycle: u64,
        is_write: bool,
        t: &TimingCycles,
    ) -> RowOutcome {
        let outcome = self.classify(i, row);
        if outcome != RowOutcome::Hit {
            // An activate happened tRCD before the column command.
            let activate_cycle = column_cycle.saturating_sub(t.rcd);
            self.precharge_ready[i] = activate_cycle + t.ras;
            self.open_row[i] = row;
        }
        // Column-to-column spacing within this bank.
        self.column_ready[i] = self.column_ready[i].max(column_cycle + t.ccd);
        // A write delays the earliest precharge by the write recovery time after its data.
        if is_write {
            self.precharge_ready[i] = self.precharge_ready[i].max(column_cycle + t.write_data_end())
        } else {
            self.precharge_ready[i] = self.precharge_ready[i].max(column_cycle + t.read_data_end())
        }
        outcome
    }

    /// Closes bank `i` (explicit precharge) at `cycle`.
    pub fn precharge(&mut self, i: usize, cycle: u64, t: &TimingCycles) {
        let pre = self.precharge_ready[i].max(cycle);
        self.open_row[i] = NO_OPEN_ROW;
        self.activate_ready[i] = self.activate_ready[i].max(pre + t.rp);
    }

    /// Blocks every bank until `cycle` and closes all rows (refresh).
    pub fn block_all_until(&mut self, cycle: u64) {
        for row in &mut self.open_row {
            *row = NO_OPEN_ROW;
        }
        for ready in &mut self.activate_ready {
            *ready = (*ready).max(cycle);
        }
        for ready in &mut self.column_ready {
            *ready = (*ready).max(cycle);
        }
        for ready in &mut self.precharge_ready {
            *ready = (*ready).max(cycle);
        }
    }

    /// Blocks bank `i` until `cycle` and closes its row.
    pub fn block_until(&mut self, i: usize, cycle: u64) {
        self.open_row[i] = NO_OPEN_ROW;
        self.activate_ready[i] = self.activate_ready[i].max(cycle);
        self.column_ready[i] = self.column_ready[i].max(cycle);
        self.precharge_ready[i] = self.precharge_ready[i].max(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::DramPreset;
    use mess_types::Frequency;

    fn timing() -> TimingCycles {
        DramPreset::Ddr4_2666
            .timing()
            .to_cpu_cycles(Frequency::from_ghz(2.0))
    }

    fn one_bank() -> BankArray {
        BankArray::new(1)
    }

    #[test]
    fn classification_follows_open_row() {
        let t = timing();
        let mut b = one_bank();
        assert_eq!(b.classify(0, 7), RowOutcome::Empty);
        b.access(0, 7, 100, false, &t);
        assert_eq!(b.open_row(0), Some(7));
        assert_eq!(b.classify(0, 7), RowOutcome::Hit);
        assert_eq!(b.classify(0, 8), RowOutcome::Miss);
    }

    #[test]
    fn banks_are_independent() {
        let t = timing();
        let mut banks = BankArray::new(4);
        assert_eq!(banks.len(), 4);
        banks.access(1, 9, 100, false, &t);
        assert_eq!(banks.classify(1, 9), RowOutcome::Hit);
        assert_eq!(banks.classify(0, 9), RowOutcome::Empty);
        assert_eq!(banks.classify(2, 9), RowOutcome::Empty);
        assert_eq!(banks.open_row(3), None);
    }

    #[test]
    fn hit_is_faster_than_empty_is_faster_than_miss() {
        let t = timing();
        // Empty bank.
        let empty = one_bank().earliest_column(0, 5, 1000, &t);
        // Bank with the target row open and column-ready in the past.
        let mut hitting = one_bank();
        hitting.access(0, 5, 100, false, &t);
        let hit = hitting.earliest_column(0, 5, 1000, &t);
        // Bank with a different row open.
        let mut missing = one_bank();
        missing.access(0, 9, 100, false, &t);
        let miss = missing.earliest_column(0, 5, 1000, &t);
        assert!(hit < empty, "hit {hit} should precede empty {empty}");
        assert!(empty < miss, "empty {empty} should precede miss {miss}");
        assert_eq!(empty - 1000, t.rcd);
        assert!(miss - 1000 >= t.rp + t.rcd);
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let t = timing();
        let mut after_read = one_bank();
        after_read.access(0, 3, 1000, false, &t);
        let mut after_write = one_bank();
        after_write.access(0, 3, 1000, true, &t);
        // A subsequent miss (to row 4) must precharge, which a write pushes further out.
        let read_next = after_read.earliest_column(0, 4, 1000, &t);
        let write_next = after_write.earliest_column(0, 4, 1000, &t);
        assert!(write_next > read_next);
    }

    #[test]
    fn tras_respected_on_fast_row_switch() {
        let t = timing();
        let mut b = one_bank();
        b.access(0, 1, 10, false, &t);
        // A miss right away cannot precharge before tRAS expires (activate was at 10 - rcd,
        // clamped to 0, so precharge_ready >= activate + tRAS).
        let col = b.earliest_column(0, 2, 11, &t);
        assert!(col >= t.ras.saturating_sub(t.rcd) + t.rp + t.rcd);
    }

    #[test]
    fn block_until_closes_row_and_delays_everything() {
        let t = timing();
        let mut b = one_bank();
        b.access(0, 1, 10, false, &t);
        b.block_until(0, 5000);
        assert_eq!(b.open_row(0), None);
        assert!(b.earliest_column(0, 1, 0, &t) >= 5000 + t.rcd);
    }

    #[test]
    fn block_all_until_closes_every_row() {
        let t = timing();
        let mut banks = BankArray::new(3);
        banks.access(0, 1, 10, false, &t);
        banks.access(2, 4, 10, false, &t);
        banks.block_all_until(5000);
        for i in 0..3 {
            assert_eq!(banks.open_row(i), None);
            assert!(banks.earliest_column(i, 1, 0, &t) >= 5000 + t.rcd);
        }
    }

    #[test]
    fn precharge_closes_row() {
        let t = timing();
        let mut b = one_bank();
        b.access(0, 1, 10, false, &t);
        b.precharge(0, 500, &t);
        assert_eq!(b.open_row(0), None);
        assert_eq!(b.classify(0, 1), RowOutcome::Empty);
    }
}
