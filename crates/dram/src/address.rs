//! Physical-address to DRAM-coordinate mapping.
//!
//! The mapping follows the interleaving commonly used by server memory controllers:
//! consecutive cache lines rotate across channels, then across bank groups and banks, so that
//! streaming traffic exploits channel- and bank-level parallelism while staying inside an open
//! row for as long as possible.

use mess_types::CACHE_LINE_BYTES;
use serde::{Deserialize, Serialize};

/// The DRAM coordinates of one cache-line address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DramCoord {
    /// Memory channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Bank index within the channel (bank-group flattened).
    pub bank: u32,
    /// Row within the bank.
    pub row: u64,
    /// Column (cache-line granularity) within the row.
    pub column: u64,
}

/// Address-mapping configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    channels: u32,
    ranks: u32,
    banks: u32,
    /// Cache lines per row (row_bytes / 64).
    lines_per_row: u64,
}

impl AddressMapping {
    /// Creates a mapping for the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `row_bytes` is smaller than a cache line.
    pub fn new(channels: u32, ranks: u32, banks: u32, row_bytes: u64) -> Self {
        assert!(
            channels > 0 && ranks > 0 && banks > 0,
            "geometry dimensions must be non-zero"
        );
        assert!(
            row_bytes >= CACHE_LINE_BYTES,
            "row must hold at least one cache line"
        );
        AddressMapping {
            channels,
            ranks,
            banks,
            lines_per_row: row_bytes / CACHE_LINE_BYTES,
        }
    }

    /// Number of channels in the mapping.
    pub fn channels(&self) -> u32 {
        self.channels
    }

    /// Number of banks per channel.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Decodes a byte address into DRAM coordinates.
    ///
    /// Bit layout (from least significant): line offset | channel | column | bank | rank | row.
    /// Interleaving consecutive lines across channels first maximises channel parallelism for
    /// sequential streams, as real controllers do. The bank index is additionally XOR-hashed
    /// with folded row bits (a permutation-based interleaving, as in real memory controllers)
    /// so that power-of-two-strided streams from different cores do not all collide in the
    /// same bank.
    pub fn decode(&self, addr: u64) -> DramCoord {
        let line = addr / CACHE_LINE_BYTES;
        let channel = (line % self.channels as u64) as u32;
        let rest = line / self.channels as u64;
        let column = rest % self.lines_per_row;
        let rest = rest / self.lines_per_row;
        let bank_raw = rest % self.banks as u64;
        let rest = rest / self.banks as u64;
        let rank = (rest % self.ranks as u64) as u32;
        let row = rest / self.ranks as u64;
        let fold = row.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let bank = ((bank_raw ^ fold) % self.banks as u64) as u32;
        DramCoord {
            channel,
            rank,
            bank,
            row,
            column,
        }
    }

    /// Returns the number of consecutive bytes mapped to the same row of the same bank before
    /// the stream moves to another bank (the "row run length" seen by streaming traffic).
    pub fn sequential_row_run_bytes(&self) -> u64 {
        self.lines_per_row * CACHE_LINE_BYTES * self.channels as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(6, 2, 16, 8192)
    }

    #[test]
    fn consecutive_lines_rotate_channels() {
        let m = mapping();
        let coords: Vec<DramCoord> = (0..12).map(|i| m.decode(i * CACHE_LINE_BYTES)).collect();
        for (i, c) in coords.iter().enumerate() {
            assert_eq!(c.channel, (i % 6) as u32);
        }
        // Lines 0 and 6 land on the same channel, consecutive columns.
        assert_eq!(coords[0].channel, coords[6].channel);
        assert_eq!(coords[6].column, coords[0].column + 1);
        assert_eq!(coords[0].row, coords[6].row);
    }

    #[test]
    fn sequential_stream_stays_in_row_before_switching_bank() {
        let m = mapping();
        let run = m.sequential_row_run_bytes();
        assert_eq!(run, 8192 / 64 * 64 * 6);
        let first = m.decode(0);
        let last_in_run = m.decode(run - CACHE_LINE_BYTES);
        let next = m.decode(run);
        assert_eq!(first.bank, last_in_run.bank);
        assert_eq!(first.row, last_in_run.row);
        assert_ne!((next.bank, next.row), (first.bank, first.row));
    }

    #[test]
    fn unaligned_addresses_map_like_their_line() {
        let m = mapping();
        assert_eq!(m.decode(0x1000), m.decode(0x103F));
        assert_ne!(m.decode(0x1000), m.decode(0x1040));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_channels_panics() {
        let _ = AddressMapping::new(0, 1, 16, 8192);
    }

    proptest! {
        #[test]
        fn prop_coordinates_are_in_range(addr in 0u64..1u64 << 44) {
            let m = mapping();
            let c = m.decode(addr);
            prop_assert!(c.channel < 6);
            prop_assert!(c.rank < 2);
            prop_assert!(c.bank < 16);
            prop_assert!(c.column < 8192 / 64);
        }

        #[test]
        fn prop_decode_is_injective_per_line(a in 0u64..1u64 << 34, b in 0u64..1u64 << 34) {
            let m = mapping();
            let la = a / CACHE_LINE_BYTES;
            let lb = b / CACHE_LINE_BYTES;
            if la != lb {
                prop_assert_ne!(m.decode(a), m.decode(b));
            } else {
                prop_assert_eq!(m.decode(a), m.decode(b));
            }
        }
    }
}
