//! Single-channel memory controller with FR-FCFS scheduling.
//!
//! The controller owns the banks of one channel, a read queue and a write queue. Reads have
//! priority; writes are buffered and drained in bursts governed by high/low watermarks, which
//! is what couples the write share of the traffic to the achievable read bandwidth and latency
//! (the central observation of paper §II-C). Refresh periodically blocks the whole channel.

use crate::address::DramCoord;
use crate::bank::{Bank, RowOutcome};
use crate::timing::TimingCycles;
use mess_types::{AccessKind, Completion, Cycle, Request, RowBufferStats};
use std::collections::VecDeque;

/// A request waiting in a controller queue.
#[derive(Debug, Clone, Copy)]
struct QueuedRequest {
    request: Request,
    coord: DramCoord,
    arrival: u64,
    /// System-level acceptance sequence, echoed in the completion for drain-order ties.
    seq: u64,
}

/// Configuration of one channel controller.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Read-queue capacity.
    pub read_queue_depth: usize,
    /// Write-queue capacity.
    pub write_queue_depth: usize,
    /// Write-drain high watermark: entering write mode.
    pub write_high_watermark: usize,
    /// Write-drain low watermark: leaving write mode.
    pub write_low_watermark: usize,
    /// If `true`, the scheduler prefers row hits over age (FR-FCFS); otherwise plain FCFS.
    pub fr_fcfs: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            read_queue_depth: 48,
            write_queue_depth: 48,
            write_high_watermark: 32,
            write_low_watermark: 8,
            fr_fcfs: true,
        }
    }
}

/// A completed access with its row-buffer outcome, returned by the controller to the system.
#[derive(Debug, Clone, Copy)]
pub struct ChannelCompletion {
    /// The completion in CPU-interface terms.
    pub completion: Completion,
    /// Row-buffer outcome of the access.
    pub outcome: RowOutcome,
    /// Acceptance sequence passed to [`ChannelController::enqueue`].
    pub seq: u64,
}

/// One channel's memory controller.
#[derive(Debug)]
pub struct ChannelController {
    timing: TimingCycles,
    config: ControllerConfig,
    banks: Vec<Bank>,
    /// Banks per rank; `banks` holds `banks_per_rank × ranks` entries.
    banks_per_rank: u32,
    read_queue: VecDeque<QueuedRequest>,
    write_queue: VecDeque<QueuedRequest>,
    /// Earliest cycle the shared data bus is free.
    bus_free: u64,
    /// Cycle until which the whole channel is blocked (refresh).
    blocked_until: u64,
    /// Next refresh deadline.
    next_refresh: u64,
    /// Recent activate timestamps per rank, for tFAW (last four) and tRRD.
    activates: Vec<VecDeque<u64>>,
    /// Kind of the last scheduled data burst, for write-to-read turnaround.
    last_burst: Option<AccessKind>,
    /// Write-drain mode flag.
    draining_writes: bool,
    /// Completions ready to be collected, sorted by completion cycle on pop.
    completed: Vec<ChannelCompletion>,
    /// Row-buffer statistics.
    row_stats: RowBufferStats,
}

impl ChannelController {
    /// Creates a controller for a channel with the given geometry and timing.
    ///
    /// `banks` is the per-rank bank count; the controller keeps independent row-buffer state
    /// for every (rank, bank) pair.
    pub fn new(timing: TimingCycles, banks: u32, ranks: u32, config: ControllerConfig) -> Self {
        ChannelController {
            timing,
            config,
            banks: vec![Bank::new(); (banks * ranks.max(1)) as usize],
            banks_per_rank: banks.max(1),
            read_queue: VecDeque::new(),
            write_queue: VecDeque::new(),
            bus_free: 0,
            blocked_until: 0,
            next_refresh: timing.refi.max(1),
            activates: vec![VecDeque::new(); ranks.max(1) as usize],
            last_burst: None,
            draining_writes: false,
            completed: Vec::new(),
            row_stats: RowBufferStats::default(),
        }
    }

    /// Returns `true` if the queue for `kind` has room.
    pub fn can_accept(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read_queue.len() < self.config.read_queue_depth,
            AccessKind::Write => self.write_queue.len() < self.config.write_queue_depth,
        }
    }

    /// Enqueues a request that was already admitted via [`ChannelController::can_accept`].
    ///
    /// `seq` is the issuer-side acceptance sequence; it is echoed in the resulting
    /// [`ChannelCompletion`] so the system can drain same-cycle completions in acceptance
    /// order.
    pub fn enqueue(&mut self, request: Request, coord: DramCoord, now: u64, seq: u64) {
        let q = QueuedRequest {
            request,
            coord,
            arrival: now,
            seq,
        };
        match request.kind {
            AccessKind::Read => self.read_queue.push_back(q),
            AccessKind::Write => self.write_queue.push_back(q),
        }
    }

    /// Number of requests waiting or in flight inside this controller, including accesses
    /// whose DRAM commands have issued but whose completions have not been drained yet.
    pub fn pending(&self) -> usize {
        self.read_queue.len() + self.write_queue.len() + self.completed.len()
    }

    /// Row-buffer statistics accumulated so far.
    pub fn row_stats(&self) -> RowBufferStats {
        self.row_stats
    }

    /// Moves completions with `complete_cycle <= now` into `out`.
    pub fn drain_completed(&mut self, now: u64, out: &mut Vec<ChannelCompletion>) {
        let mut i = 0;
        while i < self.completed.len() {
            if self.completed[i].completion.complete_cycle.as_u64() <= now {
                out.push(self.completed.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Advances the controller to `now`, issuing as many commands as the timing allows.
    pub fn tick(&mut self, now: u64) {
        self.maybe_refresh(now);
        // Issue until nothing can start at or before `now`.
        loop {
            self.update_drain_mode();
            let from_writes = self.pick_source();
            let queue_len = match from_writes {
                true => self.write_queue.len(),
                false => self.read_queue.len(),
            };
            if queue_len == 0 {
                break;
            }
            let Some((idx, column_cycle, start_cycle, outcome)) = self.select(now, from_writes)
            else {
                break;
            };
            // The request is committed once its *first* DRAM command (precharge or activate
            // for misses/empties, the column command for hits) can issue at or before `now`;
            // the data transfer itself happens `column_cycle + CL + burst` later.
            if start_cycle > now {
                break;
            }
            self.issue(idx, column_cycle, outcome, from_writes);
        }
    }

    /// Refresh: every tREFI the channel is blocked for tRFC and all rows are closed.
    fn maybe_refresh(&mut self, now: u64) {
        if self.timing.rfc == 0 {
            return;
        }
        while now >= self.next_refresh {
            let end = self.next_refresh + self.timing.rfc;
            for bank in &mut self.banks {
                bank.block_until(end);
            }
            self.blocked_until = self.blocked_until.max(end);
            self.next_refresh += self.timing.refi;
        }
    }

    /// Enters or leaves write-drain mode based on the watermarks.
    fn update_drain_mode(&mut self) {
        if self.draining_writes {
            if self.write_queue.len() <= self.config.write_low_watermark {
                self.draining_writes = false;
            }
        } else if self.write_queue.len() >= self.config.write_high_watermark {
            self.draining_writes = true;
        }
    }

    /// Chooses which queue to serve this iteration.
    fn pick_source(&self) -> bool {
        if self.draining_writes {
            true
        } else if self.read_queue.is_empty() && !self.write_queue.is_empty() {
            // Opportunistic write issue when there is no read traffic.
            true
        } else {
            false
        }
    }

    /// Selects the next request from the chosen queue following FR-FCFS: among the requests
    /// that can start earliest, prefer row hits, then the oldest. Returns the queue index, the
    /// column-command cycle, the cycle of the first command in the sequence and the row
    /// outcome.
    fn select(&self, now: u64, from_writes: bool) -> Option<(usize, u64, u64, RowOutcome)> {
        let queue = if from_writes {
            &self.write_queue
        } else {
            &self.read_queue
        };
        let mut best: Option<(usize, u64, RowOutcome, u64)> = None;
        for (i, q) in queue.iter().enumerate() {
            let bank = &self.banks[self.bank_index(&q.coord)];
            let outcome = bank.classify(q.coord.row);
            let not_before = self.activate_floor(q.coord.rank, now);
            let mut column = bank.earliest_column(q.coord.row, not_before, &self.timing);
            column = column.max(self.blocked_until).max(q.arrival);
            // The data burst must find the bus free; shift the column command if needed.
            let data_latency = if from_writes {
                self.timing.cwl
            } else {
                self.timing.cl
            };
            let data_start = (column + data_latency).max(self.bus_free);
            let mut column = data_start - data_latency;
            // Write-to-read and read-to-write turnaround penalties.
            if let Some(last) = self.last_burst {
                let switching =
                    (last == AccessKind::Write) != from_writes && last == AccessKind::Write;
                if switching {
                    column = column.max(self.bus_free + self.timing.wtr);
                }
            }
            let key_hit = matches!(outcome, RowOutcome::Hit);
            let better = match best {
                None => true,
                Some((_, best_col, best_outcome, best_age)) => {
                    if self.config.fr_fcfs {
                        let best_hit = matches!(best_outcome, RowOutcome::Hit);
                        (key_hit && !best_hit)
                            || (key_hit == best_hit && column < best_col)
                            || (key_hit == best_hit && column == best_col && q.arrival < best_age)
                    } else {
                        q.arrival < best_age
                    }
                }
            };
            if better {
                best = Some((i, column, outcome, q.arrival));
            }
            // FCFS only ever considers the head of the queue.
            if !self.config.fr_fcfs {
                break;
            }
        }
        best.map(|(i, c, o, _)| {
            let first_cmd_offset = match o {
                RowOutcome::Hit => 0,
                RowOutcome::Empty => self.timing.rcd,
                RowOutcome::Miss => self.timing.rcd + self.timing.rp,
            };
            (i, c, c.saturating_sub(first_cmd_offset), o)
        })
    }

    /// Index of the (rank, bank) pair in the flat bank vector.
    fn bank_index(&self, coord: &DramCoord) -> usize {
        (coord.rank.min(self.ranks() - 1) * self.banks_per_rank + coord.bank % self.banks_per_rank)
            as usize
    }

    /// Number of ranks this controller models.
    fn ranks(&self) -> u32 {
        (self.banks.len() as u32 / self.banks_per_rank).max(1)
    }

    /// Earliest cycle an activate may issue on `rank` given tRRD and the four-activate window.
    fn activate_floor(&self, rank: u32, now: u64) -> u64 {
        let acts = &self.activates[rank as usize % self.activates.len()];
        let mut floor = now.max(self.blocked_until);
        if let Some(&last) = acts.back() {
            floor = floor.max(last + self.timing.rrd);
        }
        if acts.len() >= 4 {
            floor = floor.max(acts[acts.len() - 4] + self.timing.faw);
        }
        floor
    }

    /// Issues the selected request: updates bank, bus and bookkeeping state and records the
    /// completion.
    fn issue(&mut self, idx: usize, column_cycle: u64, outcome: RowOutcome, from_writes: bool) {
        let q = if from_writes {
            self.write_queue
                .remove(idx)
                .expect("selected index is valid")
        } else {
            self.read_queue
                .remove(idx)
                .expect("selected index is valid")
        };
        let is_write = q.request.kind.is_write();
        let bank_index = self.bank_index(&q.coord);
        let bank = &mut self.banks[bank_index];
        bank.access(q.coord.row, column_cycle, is_write, &self.timing);

        if outcome != RowOutcome::Hit {
            // Record the activate for tRRD / tFAW tracking.
            let rank_count = self.activates.len();
            let acts = &mut self.activates[q.coord.rank as usize % rank_count];
            acts.push_back(column_cycle.saturating_sub(self.timing.rcd));
            while acts.len() > 4 {
                acts.pop_front();
            }
        }

        match outcome {
            RowOutcome::Hit => self.row_stats.hits += 1,
            RowOutcome::Empty => self.row_stats.empties += 1,
            RowOutcome::Miss => self.row_stats.misses += 1,
        }

        let data_latency = if is_write {
            self.timing.cwl
        } else {
            self.timing.cl
        };
        let data_start = column_cycle + data_latency;
        let data_end = data_start + self.timing.burst;
        self.bus_free = data_end;
        self.last_burst = Some(q.request.kind);

        let complete_cycle = if is_write {
            // A write is acknowledged once its data burst has been accepted.
            data_end
        } else {
            data_end + self.timing.overhead
        };
        self.completed.push(ChannelCompletion {
            completion: Completion {
                id: q.request.id,
                addr: q.request.addr,
                kind: q.request.kind,
                issue_cycle: q.request.issue_cycle,
                complete_cycle: Cycle::new(complete_cycle),
                core: q.request.core,
            },
            outcome,
            seq: q.seq,
        });
    }

    /// The earliest cycle at which this controller's observable state can change: the
    /// soonest already-scheduled completion, or `now + 1` while requests are still queued
    /// (command scheduling is decided cycle by cycle).
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if !self.read_queue.is_empty() || !self.write_queue.is_empty() {
            return Some(now + 1);
        }
        self.completed
            .iter()
            .map(|c| c.completion.complete_cycle.as_u64().max(now + 1))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapping;
    use crate::timing::DramPreset;
    use mess_types::Frequency;

    fn setup() -> (ChannelController, AddressMapping) {
        let t = DramPreset::Ddr4_2666.timing();
        let cycles = t.to_cpu_cycles(Frequency::from_ghz(2.0));
        let ctrl = ChannelController::new(
            cycles,
            t.banks_per_channel,
            t.ranks,
            ControllerConfig::default(),
        );
        let map = AddressMapping::new(1, t.ranks, t.banks_per_channel, t.row_bytes);
        (ctrl, map)
    }

    fn run_reads(
        ctrl: &mut ChannelController,
        map: &AddressMapping,
        addrs: &[u64],
    ) -> Vec<ChannelCompletion> {
        for (i, &addr) in addrs.iter().enumerate() {
            let req = Request::read(i as u64, addr, Cycle::new(0), 0);
            assert!(
                ctrl.can_accept(AccessKind::Read),
                "read queue full in test (batches are sized to fit)"
            );
            ctrl.enqueue(req, map.decode(addr), 0, i as u64);
        }
        let mut out = Vec::new();
        for now in 0..200_000u64 {
            ctrl.tick(now);
            ctrl.drain_completed(now, &mut out);
            if out.len() == addrs.len() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_read_completes_with_device_latency() {
        let (mut ctrl, map) = setup();
        let out = run_reads(&mut ctrl, &map, &[0x1000]);
        assert_eq!(out.len(), 1);
        let lat = out[0].completion.latency().as_u64();
        // Empty bank: tRCD + CL + burst + overhead at 2 GHz ~= 2*(14.25+14.25+3+16) ~ 95 cycles.
        assert!(
            lat > 60 && lat < 160,
            "unexpected unloaded latency {lat} cycles"
        );
        assert_eq!(out[0].outcome, RowOutcome::Empty);
        assert_eq!(ctrl.row_stats().empties, 1);
    }

    #[test]
    fn same_row_accesses_hit_and_are_faster() {
        let (mut ctrl, map) = setup();
        // Lines within one row of one bank (single channel mapping, consecutive lines share a row).
        let addrs: Vec<u64> = (0..8).map(|i| 0x4_0000 + i * 64).collect();
        let out = run_reads(&mut ctrl, &map, &addrs);
        assert_eq!(out.len(), 8);
        let stats = ctrl.row_stats();
        assert_eq!(stats.empties, 1);
        assert_eq!(stats.hits, 7);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn different_rows_same_bank_miss() {
        let (mut ctrl, map) = setup();
        // Two addresses mapping to the same bank but different rows: stride by
        // lines_per_row * banks * ranks rows? Simpler: decode-based search.
        let base = 0x10_0000u64;
        let c0 = map.decode(base);
        let mut conflict = base;
        loop {
            conflict += 64;
            let c = map.decode(conflict);
            if c.bank == c0.bank && c.rank == c0.rank && c.row != c0.row {
                break;
            }
        }
        // Issue the conflicting accesses one at a time: enqueued together, FR-FCFS would
        // legitimately reorder them to serve the row hit first.
        let mut total = 0;
        for addr in [base, conflict, base] {
            total += run_reads(&mut ctrl, &map, &[addr]).len();
        }
        assert_eq!(total, 3);
        let stats = ctrl.row_stats();
        assert_eq!(stats.empties, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn writes_do_not_starve_reads_but_add_turnaround() {
        let (mut ctrl, map) = setup();
        // Interleave writes and reads; all must complete.
        let mut out = Vec::new();
        for i in 0..40u64 {
            let addr = 0x20_0000 + i * 64;
            let req = if i.is_multiple_of(2) {
                Request::read(i, addr, Cycle::new(i), 0)
            } else {
                Request::write(i, addr, Cycle::new(i), 0)
            };
            ctrl.enqueue(req, map.decode(addr), i, i);
        }
        for now in 0..500_000u64 {
            ctrl.tick(now);
            ctrl.drain_completed(now, &mut out);
            if out.len() == 40 {
                break;
            }
        }
        assert_eq!(out.len(), 40);
        assert_eq!(ctrl.pending(), 0);
    }

    #[test]
    fn queue_backpressure_reported() {
        let (mut ctrl, map) = setup();
        let mut accepted = 0;
        for i in 0..200u64 {
            if ctrl.can_accept(AccessKind::Read) {
                ctrl.enqueue(
                    Request::read(i, i * 64, Cycle::new(0), 0),
                    map.decode(i * 64),
                    0,
                    i,
                );
                accepted += 1;
            }
        }
        assert_eq!(accepted, ControllerConfig::default().read_queue_depth);
        assert!(!ctrl.can_accept(AccessKind::Read));
        assert!(ctrl.can_accept(AccessKind::Write));
    }

    #[test]
    fn refresh_blocks_and_closes_rows() {
        let t = DramPreset::Ddr4_2666.timing();
        let cycles = t.to_cpu_cycles(Frequency::from_ghz(2.0));
        let mut ctrl = ChannelController::new(
            cycles,
            t.banks_per_channel,
            t.ranks,
            ControllerConfig::default(),
        );
        let map = AddressMapping::new(1, t.ranks, t.banks_per_channel, t.row_bytes);
        // Open a row well before the refresh interval.
        ctrl.enqueue(
            Request::read(0, 0x1000, Cycle::new(0), 0),
            map.decode(0x1000),
            0,
            0,
        );
        ctrl.tick(10);
        // Jump past the refresh deadline; the row must be closed, so the next access to the
        // same row is an empty, not a hit.
        let after_refresh = cycles.refi + 10;
        ctrl.tick(after_refresh);
        ctrl.enqueue(
            Request::read(1, 0x1000, Cycle::new(after_refresh), 0),
            map.decode(0x1000),
            after_refresh,
            1,
        );
        let mut out = Vec::new();
        for now in after_refresh..after_refresh + 100_000 {
            ctrl.tick(now);
            ctrl.drain_completed(now, &mut out);
            if out.len() == 2 {
                break;
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(ctrl.row_stats().hits, 0);
        assert_eq!(ctrl.row_stats().empties, 2);
    }

    #[test]
    fn fcfs_mode_issues_in_order() {
        let t = DramPreset::Ddr4_2666.timing();
        let cycles = t.to_cpu_cycles(Frequency::from_ghz(2.0));
        let cfg = ControllerConfig {
            fr_fcfs: false,
            ..ControllerConfig::default()
        };
        let mut ctrl = ChannelController::new(cycles, t.banks_per_channel, t.ranks, cfg);
        let map = AddressMapping::new(1, t.ranks, t.banks_per_channel, t.row_bytes);
        // A conflicting address pattern: with FCFS the completion order equals arrival order.
        let addrs = [0x0u64, 0x80_0000, 0x40, 0x80_0040];
        for (i, &a) in addrs.iter().enumerate() {
            ctrl.enqueue(
                Request::read(i as u64, a, Cycle::new(0), 0),
                map.decode(a),
                0,
                i as u64,
            );
        }
        let mut out = Vec::new();
        for now in 0..500_000u64 {
            ctrl.tick(now);
            ctrl.drain_completed(now, &mut out);
            if out.len() == addrs.len() {
                break;
            }
        }
        out.sort_by_key(|c| c.completion.complete_cycle.as_u64());
        let ids: Vec<u64> = out.iter().map(|c| c.completion.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
