//! Single-channel memory controller with FR-FCFS scheduling and an exact event engine.
//!
//! The controller owns the banks of one channel, a read queue and a write queue. Reads have
//! priority; writes are buffered and drained in bursts governed by high/low watermarks, which
//! is what couples the write share of the traffic to the achievable read bandwidth and latency
//! (the central observation of paper §II-C). Refresh periodically blocks the whole channel.
//!
//! # Event engine
//!
//! Command scheduling is defined cycle by cycle — at every cycle the FR-FCFS policy picks the
//! best candidate and issues it if its first DRAM command is ready — but the controller does
//! *not* have to be stepped cycle by cycle to compute that schedule. For a frozen queue and
//! bank state, the cycle at which a candidate's first command becomes ready is a pure maximum
//! of absolute deadlines (tRCD/tRP/tRAS windows of its bank, the rank's tRRD/tFAW activate
//! window, refresh blocking, data-bus occupancy), so the winner that the internal FR-FCFS
//! `select` scan reports as "not ready yet" is guaranteed to be the *next* command issued,
//! exactly at its reported start cycle. [`ChannelController::tick`] exploits this to jump
//! straight from one command issue to the next; [`ChannelController::tick_reference`]
//! retains the cycle-by-cycle walk for validation. Both produce bit-identical schedules —
//! the equivalence is enforced by the `event_equivalence` integration test and the shared
//! conformance suite.

use crate::address::DramCoord;
use crate::bank::{BankArray, RowOutcome};
use crate::timing::TimingCycles;
use mess_types::{AccessKind, Completion, Cycle, Request, RowBufferStats};
use std::collections::{BinaryHeap, VecDeque};

/// A request waiting in a controller queue.
#[derive(Debug, Clone, Copy)]
struct QueuedRequest {
    request: Request,
    coord: DramCoord,
    arrival: u64,
    /// System-level acceptance sequence, echoed in the completion for drain-order ties.
    seq: u64,
}

/// Configuration of one channel controller.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Read-queue capacity.
    pub read_queue_depth: usize,
    /// Write-queue capacity.
    pub write_queue_depth: usize,
    /// Write-drain high watermark: entering write mode.
    pub write_high_watermark: usize,
    /// Write-drain low watermark: leaving write mode.
    pub write_low_watermark: usize,
    /// If `true`, the scheduler prefers row hits over age (FR-FCFS); otherwise plain FCFS.
    pub fr_fcfs: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            read_queue_depth: 48,
            write_queue_depth: 48,
            write_high_watermark: 32,
            write_low_watermark: 8,
            fr_fcfs: true,
        }
    }
}

/// A completed access with its row-buffer outcome, returned by the controller to the system.
#[derive(Debug, Clone, Copy)]
pub struct ChannelCompletion {
    /// The completion in CPU-interface terms.
    pub completion: Completion,
    /// Row-buffer outcome of the access.
    pub outcome: RowOutcome,
    /// Acceptance sequence passed to [`ChannelController::enqueue`].
    pub seq: u64,
}

/// Min-heap entry ordering scheduled completions by (completion cycle, acceptance sequence).
#[derive(Debug, Clone, Copy)]
struct PendingCompletion(ChannelCompletion);

impl PendingCompletion {
    fn key(&self) -> (u64, u64) {
        (self.0.completion.complete_cycle.as_u64(), self.0.seq)
    }
}

impl PartialEq for PendingCompletion {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for PendingCompletion {}
impl PartialOrd for PendingCompletion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingCompletion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest completion on top.
        other.key().cmp(&self.key())
    }
}

/// Sentinel for "no command can issue while the queues stay as they are".
const NO_ISSUE: u64 = u64::MAX;

/// One channel's memory controller.
#[derive(Debug)]
pub struct ChannelController {
    timing: TimingCycles,
    config: ControllerConfig,
    /// Flat per-(rank, bank) state, structure-of-arrays.
    banks: BankArray,
    /// Banks per rank; `banks` holds `banks_per_rank × ranks` entries.
    banks_per_rank: u32,
    read_queue: VecDeque<QueuedRequest>,
    write_queue: VecDeque<QueuedRequest>,
    /// Earliest cycle the shared data bus is free.
    bus_free: u64,
    /// Cycle until which the whole channel is blocked (refresh).
    blocked_until: u64,
    /// Next refresh deadline.
    next_refresh: u64,
    /// Recent activate timestamps per rank as flat 4-entry rings, for tFAW and tRRD:
    /// `act_times[rank * 4 + slot]`, `act_len[rank]` valid entries, `act_head[rank]` the
    /// slot of the *next* push (so the oldest of a full window lives at `act_head`).
    act_times: Vec<u64>,
    act_head: Vec<u8>,
    act_len: Vec<u8>,
    /// Kind of the last scheduled data burst, for write-to-read turnaround.
    last_burst: Option<AccessKind>,
    /// Write-drain mode flag.
    draining_writes: bool,
    /// Scheduled completions, a min-heap on (completion cycle, acceptance sequence) so
    /// drains pop in drain order at O(log n) per completion without sorting.
    completed: BinaryHeap<PendingCompletion>,
    /// First cycle whose command scheduling has not run yet (the internal event clock).
    next_unprocessed: u64,
    /// The next-issue/refresh bound computed by the last `tick` ([`NO_ISSUE`] when the
    /// served queue was empty). Exact while `queues_dirty` is false; `next_event` reads it
    /// instead of re-running the FR-FCFS scan.
    cached_next_issue: u64,
    /// Set by `enqueue`: the cached bound may be too late for the new arrivals, so
    /// `next_event` degrades to `now + 1` until the next `tick` recomputes the schedule.
    queues_dirty: bool,
    /// Row-buffer statistics.
    row_stats: RowBufferStats,
}

impl ChannelController {
    /// Creates a controller for a channel with the given geometry and timing.
    ///
    /// `banks` is the per-rank bank count; the controller keeps independent row-buffer state
    /// for every (rank, bank) pair.
    pub fn new(timing: TimingCycles, banks: u32, ranks: u32, config: ControllerConfig) -> Self {
        let ranks = ranks.max(1) as usize;
        ChannelController {
            timing,
            config,
            banks: BankArray::new(banks.max(1) as usize * ranks),
            banks_per_rank: banks.max(1),
            read_queue: VecDeque::new(),
            write_queue: VecDeque::new(),
            bus_free: 0,
            blocked_until: 0,
            next_refresh: timing.refi.max(1),
            act_times: vec![0; ranks * 4],
            act_head: vec![0; ranks],
            act_len: vec![0; ranks],
            last_burst: None,
            draining_writes: false,
            completed: BinaryHeap::new(),
            next_unprocessed: 0,
            cached_next_issue: NO_ISSUE,
            queues_dirty: false,
            row_stats: RowBufferStats::default(),
        }
    }

    /// Returns `true` if the queue for `kind` has room.
    pub fn can_accept(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read_queue.len() < self.config.read_queue_depth,
            AccessKind::Write => self.write_queue.len() < self.config.write_queue_depth,
        }
    }

    /// Enqueues a request that was already admitted via [`ChannelController::can_accept`].
    ///
    /// `seq` is the issuer-side acceptance sequence; it is echoed in the resulting
    /// [`ChannelCompletion`] so the system can drain same-cycle completions in acceptance
    /// order.
    pub fn enqueue(&mut self, request: Request, coord: DramCoord, now: u64, seq: u64) {
        let q = QueuedRequest {
            request,
            coord,
            arrival: now,
            seq,
        };
        match request.kind {
            AccessKind::Read => self.read_queue.push_back(q),
            AccessKind::Write => self.write_queue.push_back(q),
        }
        self.queues_dirty = true;
    }

    /// Number of requests waiting or in flight inside this controller, including accesses
    /// whose DRAM commands have issued but whose completions have not been drained yet.
    pub fn pending(&self) -> usize {
        self.read_queue.len() + self.write_queue.len() + self.completed.len()
    }

    /// Row-buffer statistics accumulated so far.
    pub fn row_stats(&self) -> RowBufferStats {
        self.row_stats
    }

    /// Moves completions with `complete_cycle <= now` into `out`, ordered by completion
    /// cycle with same-cycle ties in acceptance order.
    ///
    /// Completions live in a min-heap keyed by (cycle, sequence), so a drain of `k` out of
    /// `n` scheduled completions costs `O(k log n)` and allocates nothing beyond what
    /// `Vec::push` on the caller's buffer requires.
    pub fn drain_completed(&mut self, now: u64, out: &mut Vec<ChannelCompletion>) {
        while let Some(top) = self.completed.peek() {
            if top.0.completion.complete_cycle.as_u64() > now {
                break;
            }
            let entry = self.completed.pop().expect("peeked entry exists");
            out.push(entry.0);
        }
    }

    /// Advances the controller to `now`, issuing every command the timing allows at the
    /// cycle it becomes ready, and jumping over the cycles in between.
    ///
    /// The schedule is bit-identical to stepping [`ChannelController::tick_reference`]
    /// through every cycle: between command issues the queue and bank state are frozen, so
    /// the next issue cycle reported by the scheduler is exact (see the module docs).
    pub fn tick(&mut self, now: u64) {
        // Dead-tick fast path: with no arrivals since the last schedule computation and the
        // clock still short of both the computed next issue and the next refresh deadline,
        // every cycle up to `now` is provably idle — advance the clock without re-scanning.
        if !self.queues_dirty
            && now < self.cached_next_issue
            && (self.timing.rfc == 0 || now < self.next_refresh)
        {
            self.next_unprocessed = self.next_unprocessed.max(now + 1);
            return;
        }
        while self.next_unprocessed <= now {
            let t = self.next_unprocessed;
            self.maybe_refresh(t);
            // The next cycle at which the schedule can differ from "nothing happens": the
            // exact next command issue, or a refresh deadline (which re-classifies every
            // queued request against closed rows and re-floors the whole channel).
            let mut stop = self.issue_ready_at(t);
            if self.timing.rfc != 0 {
                stop = stop.min(self.next_refresh);
            }
            if stop > now {
                self.cached_next_issue = stop;
                self.queues_dirty = false;
                self.next_unprocessed = now + 1;
            } else {
                self.next_unprocessed = stop;
            }
        }
    }

    /// The retained cycle-by-cycle reference path: advances to `now` by running the
    /// scheduler at every single cycle, exactly like the original lockstep controller.
    ///
    /// This exists for validation only — the `event_equivalence` test drives it against
    /// [`ChannelController::tick`] on random traffic and asserts bit-identical completions.
    /// It is orders of magnitude slower on low-occupancy traffic; never use it outside
    /// tests or debugging sessions.
    pub fn tick_reference(&mut self, now: u64) {
        while self.next_unprocessed <= now {
            let t = self.next_unprocessed;
            self.maybe_refresh(t);
            self.issue_ready_at(t);
            self.next_unprocessed = t + 1;
        }
        // The reference walk does not maintain the next-issue cache; make `next_event`
        // fall back to its safe `now + 1` bound.
        self.queues_dirty = true;
    }

    /// Refresh: every tREFI the channel is blocked for tRFC and all rows are closed.
    fn maybe_refresh(&mut self, now: u64) {
        if self.timing.rfc == 0 {
            return;
        }
        while now >= self.next_refresh {
            let end = self.next_refresh + self.timing.rfc;
            self.banks.block_all_until(end);
            self.blocked_until = self.blocked_until.max(end);
            self.next_refresh += self.timing.refi;
        }
    }

    /// Runs the scheduler at cycle `now`: issues every command whose first DRAM command is
    /// ready at or before `now`, and returns the exact cycle the next command will issue if
    /// the queues stay unchanged ([`NO_ISSUE`] when the served queue is empty).
    fn issue_ready_at(&mut self, now: u64) -> u64 {
        loop {
            self.update_drain_mode();
            let from_writes = self.pick_source();
            let queue_len = match from_writes {
                true => self.write_queue.len(),
                false => self.read_queue.len(),
            };
            if queue_len == 0 {
                return NO_ISSUE;
            }
            let Some((idx, column_cycle, start_cycle, outcome)) = self.select(now, from_writes)
            else {
                return NO_ISSUE;
            };
            // The request is committed once its *first* DRAM command (precharge or activate
            // for misses/empties, the column command for hits) can issue at or before `now`;
            // the data transfer itself happens `column_cycle + CL + burst` later.
            if start_cycle > now {
                // The winner's readiness is a maximum of absolute deadlines, and no other
                // candidate can overtake it while the queues are frozen, so `start_cycle`
                // is the exact next issue cycle.
                return start_cycle;
            }
            self.issue(idx, column_cycle, outcome, from_writes);
        }
    }

    /// Enters or leaves write-drain mode based on the watermarks.
    fn update_drain_mode(&mut self) {
        if self.draining_writes {
            if self.write_queue.len() <= self.config.write_low_watermark {
                self.draining_writes = false;
            }
        } else if self.write_queue.len() >= self.config.write_high_watermark {
            self.draining_writes = true;
        }
    }

    /// Chooses which queue to serve this iteration.
    fn pick_source(&self) -> bool {
        if self.draining_writes {
            true
        } else if self.read_queue.is_empty() && !self.write_queue.is_empty() {
            // Opportunistic write issue when there is no read traffic.
            true
        } else {
            false
        }
    }

    /// Selects the next request from the chosen queue following FR-FCFS: among the requests
    /// that can start earliest, prefer row hits, then the oldest. Returns the queue index, the
    /// column-command cycle, the cycle of the first command in the sequence and the row
    /// outcome.
    ///
    /// For every candidate the computed start cycle is `max(now, E)` where `E` is a maximum
    /// of deadlines that do not depend on `now`; this is what makes the returned start cycle
    /// of a not-yet-ready winner the *exact* next issue cycle (module docs).
    fn select(&self, now: u64, from_writes: bool) -> Option<(usize, u64, u64, RowOutcome)> {
        let queue = if from_writes {
            &self.write_queue
        } else {
            &self.read_queue
        };
        let mut best: Option<(usize, u64, RowOutcome, u64)> = None;
        for (i, q) in queue.iter().enumerate() {
            let bank = self.bank_index(&q.coord);
            let outcome = self.banks.classify(bank, q.coord.row);
            let not_before = self.activate_floor(q.coord.rank, now);
            let mut column =
                self.banks
                    .earliest_column(bank, q.coord.row, not_before, &self.timing);
            column = column.max(self.blocked_until).max(q.arrival);
            // The data burst must find the bus free; shift the column command if needed.
            let data_latency = self.timing.data_latency(from_writes);
            let data_start = (column + data_latency).max(self.bus_free);
            let mut column = data_start - data_latency;
            // Write-to-read and read-to-write turnaround penalties.
            if let Some(last) = self.last_burst {
                let switching =
                    (last == AccessKind::Write) != from_writes && last == AccessKind::Write;
                if switching {
                    column = column.max(self.bus_free + self.timing.wtr);
                }
            }
            let key_hit = matches!(outcome, RowOutcome::Hit);
            let better = match best {
                None => true,
                Some((_, best_col, best_outcome, best_age)) => {
                    if self.config.fr_fcfs {
                        let best_hit = matches!(best_outcome, RowOutcome::Hit);
                        (key_hit && !best_hit)
                            || (key_hit == best_hit && column < best_col)
                            || (key_hit == best_hit && column == best_col && q.arrival < best_age)
                    } else {
                        q.arrival < best_age
                    }
                }
            };
            if better {
                best = Some((i, column, outcome, q.arrival));
            }
            // FCFS only ever considers the head of the queue.
            if !self.config.fr_fcfs {
                break;
            }
        }
        best.map(|(i, c, o, _)| {
            let first_cmd_offset = match o {
                RowOutcome::Hit => 0,
                RowOutcome::Empty => self.timing.rcd,
                RowOutcome::Miss => self.timing.rcd + self.timing.rp,
            };
            (i, c, c.saturating_sub(first_cmd_offset), o)
        })
    }

    /// Index of the (rank, bank) pair in the flat bank vector.
    fn bank_index(&self, coord: &DramCoord) -> usize {
        (coord.rank.min(self.ranks() - 1) * self.banks_per_rank + coord.bank % self.banks_per_rank)
            as usize
    }

    /// Number of ranks this controller models.
    fn ranks(&self) -> u32 {
        (self.banks.len() as u32 / self.banks_per_rank).max(1)
    }

    /// Earliest cycle an activate may issue on `rank` given tRRD and the four-activate window.
    fn activate_floor(&self, rank: u32, now: u64) -> u64 {
        let r = rank as usize % self.act_len.len();
        let len = self.act_len[r] as usize;
        let head = self.act_head[r] as usize;
        let mut floor = now.max(self.blocked_until);
        if len > 0 {
            let last = self.act_times[r * 4 + (head + 3) % 4];
            floor = floor.max(last + self.timing.rrd);
        }
        if len >= 4 {
            let oldest = self.act_times[r * 4 + head];
            floor = floor.max(oldest + self.timing.faw);
        }
        floor
    }

    /// Records an activate at `cycle` on `rank` into the tFAW ring.
    fn record_activate(&mut self, rank: u32, cycle: u64) {
        let r = rank as usize % self.act_len.len();
        let head = self.act_head[r] as usize;
        self.act_times[r * 4 + head] = cycle;
        self.act_head[r] = ((head + 1) % 4) as u8;
        self.act_len[r] = (self.act_len[r] + 1).min(4);
    }

    /// Issues the selected request: updates bank, bus and bookkeeping state and records the
    /// completion.
    fn issue(&mut self, idx: usize, column_cycle: u64, outcome: RowOutcome, from_writes: bool) {
        let q = if from_writes {
            self.write_queue
                .remove(idx)
                .expect("selected index is valid")
        } else {
            self.read_queue
                .remove(idx)
                .expect("selected index is valid")
        };
        let is_write = q.request.kind.is_write();
        let bank_index = self.bank_index(&q.coord);
        self.banks.access(
            bank_index,
            q.coord.row,
            column_cycle,
            is_write,
            &self.timing,
        );

        if outcome != RowOutcome::Hit {
            // Record the activate for tRRD / tFAW tracking.
            self.record_activate(q.coord.rank, column_cycle.saturating_sub(self.timing.rcd));
        }

        match outcome {
            RowOutcome::Hit => self.row_stats.hits += 1,
            RowOutcome::Empty => self.row_stats.empties += 1,
            RowOutcome::Miss => self.row_stats.misses += 1,
        }

        let data_latency = self.timing.data_latency(is_write);
        let data_start = column_cycle + data_latency;
        let data_end = data_start + self.timing.burst;
        self.bus_free = data_end;
        self.last_burst = Some(q.request.kind);

        let complete_cycle = if is_write {
            // A write is acknowledged once its data burst has been accepted.
            data_end
        } else {
            data_end + self.timing.overhead
        };
        self.completed.push(PendingCompletion(ChannelCompletion {
            completion: Completion {
                id: q.request.id,
                addr: q.request.addr,
                kind: q.request.kind,
                issue_cycle: q.request.issue_cycle,
                complete_cycle: Cycle::new(complete_cycle),
                core: q.request.core,
            },
            outcome,
            seq: q.seq,
        }));
    }

    /// The earliest cycle after `now` at which this controller's observable state can
    /// change: the soonest already-scheduled completion, or the exact cycle the next DRAM
    /// command will issue while requests are queued (a completion follows it strictly
    /// later, so the bound is never late).
    ///
    /// The returned cycle is exact while the queues stay unchanged; newly enqueued requests
    /// make the next `tick` recompute the schedule, so a stale (early) value only costs one
    /// extra wake-up, never a missed completion.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let mut next = self
            .completed
            .peek()
            .map(|p| p.0.completion.complete_cycle.as_u64().max(now + 1));
        if !self.read_queue.is_empty() || !self.write_queue.is_empty() {
            // The last tick already computed the exact next command-issue cycle; reuse it
            // instead of re-running the FR-FCFS scan. New arrivals since then invalidate
            // the cache, and `now + 1` requests one (cheap) tick to rebuild it — exactly
            // the cycle at which a fresh request could first issue anyway.
            let e = if self.queues_dirty {
                now + 1
            } else {
                self.cached_next_issue
            };
            // With a full queue the issuer may be waiting for a slot, and slots free
            // exactly at command issues — wake it then. Otherwise only completions are
            // observable, and every not-yet-issued command completes no earlier than its
            // issue plus the shortest column-to-completion path — min over the write ack
            // (CWL + burst) and the read return (CL + burst + overhead) — so the wake-up
            // can skip the issue itself.
            let full = self.read_queue.len() >= self.config.read_queue_depth
                || self.write_queue.len() >= self.config.write_queue_depth;
            let e = if full {
                e
            } else {
                let min_completion_path = (self.timing.cwl)
                    .min(self.timing.cl + self.timing.overhead)
                    + self.timing.burst;
                e.saturating_add(min_completion_path)
            };
            let e = e.max(now + 1);
            next = Some(next.map_or(e, |n| n.min(e)));
        }
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapping;
    use crate::timing::DramPreset;
    use mess_types::Frequency;

    fn setup() -> (ChannelController, AddressMapping) {
        let t = DramPreset::Ddr4_2666.timing();
        let cycles = t.to_cpu_cycles(Frequency::from_ghz(2.0));
        let ctrl = ChannelController::new(
            cycles,
            t.banks_per_channel,
            t.ranks,
            ControllerConfig::default(),
        );
        let map = AddressMapping::new(1, t.ranks, t.banks_per_channel, t.row_bytes);
        (ctrl, map)
    }

    fn run_reads(
        ctrl: &mut ChannelController,
        map: &AddressMapping,
        addrs: &[u64],
    ) -> Vec<ChannelCompletion> {
        for (i, &addr) in addrs.iter().enumerate() {
            let req = Request::read(i as u64, addr, Cycle::new(0), 0);
            assert!(
                ctrl.can_accept(AccessKind::Read),
                "read queue full in test (batches are sized to fit)"
            );
            ctrl.enqueue(req, map.decode(addr), 0, i as u64);
        }
        let mut out = Vec::new();
        for now in 0..200_000u64 {
            ctrl.tick(now);
            ctrl.drain_completed(now, &mut out);
            if out.len() == addrs.len() {
                break;
            }
        }
        out
    }

    #[test]
    fn single_read_completes_with_device_latency() {
        let (mut ctrl, map) = setup();
        let out = run_reads(&mut ctrl, &map, &[0x1000]);
        assert_eq!(out.len(), 1);
        let lat = out[0].completion.latency().as_u64();
        // Empty bank: tRCD + CL + burst + overhead at 2 GHz ~= 2*(14.25+14.25+3+16) ~ 95 cycles.
        assert!(
            lat > 60 && lat < 160,
            "unexpected unloaded latency {lat} cycles"
        );
        assert_eq!(out[0].outcome, RowOutcome::Empty);
        assert_eq!(ctrl.row_stats().empties, 1);
    }

    #[test]
    fn same_row_accesses_hit_and_are_faster() {
        let (mut ctrl, map) = setup();
        // Lines within one row of one bank (single channel mapping, consecutive lines share a row).
        let addrs: Vec<u64> = (0..8).map(|i| 0x4_0000 + i * 64).collect();
        let out = run_reads(&mut ctrl, &map, &addrs);
        assert_eq!(out.len(), 8);
        let stats = ctrl.row_stats();
        assert_eq!(stats.empties, 1);
        assert_eq!(stats.hits, 7);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn different_rows_same_bank_miss() {
        let (mut ctrl, map) = setup();
        // Two addresses mapping to the same bank but different rows: stride by
        // lines_per_row * banks * ranks rows? Simpler: decode-based search.
        let base = 0x10_0000u64;
        let c0 = map.decode(base);
        let mut conflict = base;
        loop {
            conflict += 64;
            let c = map.decode(conflict);
            if c.bank == c0.bank && c.rank == c0.rank && c.row != c0.row {
                break;
            }
        }
        // Issue the conflicting accesses one at a time: enqueued together, FR-FCFS would
        // legitimately reorder them to serve the row hit first.
        let mut total = 0;
        for addr in [base, conflict, base] {
            total += run_reads(&mut ctrl, &map, &[addr]).len();
        }
        assert_eq!(total, 3);
        let stats = ctrl.row_stats();
        assert_eq!(stats.empties, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn writes_do_not_starve_reads_but_add_turnaround() {
        let (mut ctrl, map) = setup();
        // Interleave writes and reads; all must complete.
        let mut out = Vec::new();
        for i in 0..40u64 {
            let addr = 0x20_0000 + i * 64;
            let req = if i.is_multiple_of(2) {
                Request::read(i, addr, Cycle::new(i), 0)
            } else {
                Request::write(i, addr, Cycle::new(i), 0)
            };
            ctrl.enqueue(req, map.decode(addr), i, i);
        }
        for now in 0..500_000u64 {
            ctrl.tick(now);
            ctrl.drain_completed(now, &mut out);
            if out.len() == 40 {
                break;
            }
        }
        assert_eq!(out.len(), 40);
        assert_eq!(ctrl.pending(), 0);
    }

    #[test]
    fn queue_backpressure_reported() {
        let (mut ctrl, map) = setup();
        let mut accepted = 0;
        for i in 0..200u64 {
            if ctrl.can_accept(AccessKind::Read) {
                ctrl.enqueue(
                    Request::read(i, i * 64, Cycle::new(0), 0),
                    map.decode(i * 64),
                    0,
                    i,
                );
                accepted += 1;
            }
        }
        assert_eq!(accepted, ControllerConfig::default().read_queue_depth);
        assert!(!ctrl.can_accept(AccessKind::Read));
        assert!(ctrl.can_accept(AccessKind::Write));
    }

    #[test]
    fn refresh_blocks_and_closes_rows() {
        let t = DramPreset::Ddr4_2666.timing();
        let cycles = t.to_cpu_cycles(Frequency::from_ghz(2.0));
        let mut ctrl = ChannelController::new(
            cycles,
            t.banks_per_channel,
            t.ranks,
            ControllerConfig::default(),
        );
        let map = AddressMapping::new(1, t.ranks, t.banks_per_channel, t.row_bytes);
        // Open a row well before the refresh interval.
        ctrl.enqueue(
            Request::read(0, 0x1000, Cycle::new(0), 0),
            map.decode(0x1000),
            0,
            0,
        );
        ctrl.tick(10);
        // Jump past the refresh deadline; the row must be closed, so the next access to the
        // same row is an empty, not a hit.
        let after_refresh = cycles.refi + 10;
        ctrl.tick(after_refresh);
        ctrl.enqueue(
            Request::read(1, 0x1000, Cycle::new(after_refresh), 0),
            map.decode(0x1000),
            after_refresh,
            1,
        );
        let mut out = Vec::new();
        for now in after_refresh..after_refresh + 100_000 {
            ctrl.tick(now);
            ctrl.drain_completed(now, &mut out);
            if out.len() == 2 {
                break;
            }
        }
        assert_eq!(out.len(), 2);
        assert_eq!(ctrl.row_stats().hits, 0);
        assert_eq!(ctrl.row_stats().empties, 2);
    }

    #[test]
    fn fcfs_mode_issues_in_order() {
        let t = DramPreset::Ddr4_2666.timing();
        let cycles = t.to_cpu_cycles(Frequency::from_ghz(2.0));
        let cfg = ControllerConfig {
            fr_fcfs: false,
            ..ControllerConfig::default()
        };
        let mut ctrl = ChannelController::new(cycles, t.banks_per_channel, t.ranks, cfg);
        let map = AddressMapping::new(1, t.ranks, t.banks_per_channel, t.row_bytes);
        // A conflicting address pattern: with FCFS the completion order equals arrival order.
        let addrs = [0x0u64, 0x80_0000, 0x40, 0x80_0040];
        for (i, &a) in addrs.iter().enumerate() {
            ctrl.enqueue(
                Request::read(i as u64, a, Cycle::new(0), 0),
                map.decode(a),
                0,
                i as u64,
            );
        }
        let mut out = Vec::new();
        for now in 0..500_000u64 {
            ctrl.tick(now);
            ctrl.drain_completed(now, &mut out);
            if out.len() == addrs.len() {
                break;
            }
        }
        let ids: Vec<u64> = out.iter().map(|c| c.completion.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn drain_order_follows_completion_cycles_under_reordering() {
        // FR-FCFS serves row hits before older misses, so completions are produced out of
        // acceptance order; the drain must still hand them out sorted by completion cycle.
        let (mut ctrl, map) = setup();
        let base = 0x10_0000u64;
        let c0 = map.decode(base);
        let mut conflict = base;
        loop {
            conflict += 64;
            let c = map.decode(conflict);
            if c.bank == c0.bank && c.rank == c0.rank && c.row != c0.row {
                break;
            }
        }
        // Open the row at `base`, then enqueue a miss (conflict row) *before* a hit: the hit
        // is served first even though its sequence number is larger.
        let warm = run_reads(&mut ctrl, &map, &[base]);
        assert_eq!(warm.len(), 1);
        ctrl.enqueue(
            Request::read(10, conflict, Cycle::new(0), 0),
            map.decode(conflict),
            0,
            10,
        );
        ctrl.enqueue(
            Request::read(11, base + 64, Cycle::new(0), 0),
            map.decode(base + 64),
            0,
            11,
        );
        // Let both complete without draining in between, then drain in one call.
        ctrl.tick(200_000);
        let mut out = Vec::new();
        ctrl.drain_completed(200_000, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(
            out[0].completion.id.0, 11,
            "the row hit completes (and must drain) first"
        );
        let cycles: Vec<u64> = out
            .iter()
            .map(|c| c.completion.complete_cycle.as_u64())
            .collect();
        let mut sorted = cycles.clone();
        sorted.sort_unstable();
        assert_eq!(cycles, sorted, "drain order must equal completion order");
        assert_eq!(ctrl.row_stats().hits, 1);
        assert_eq!(ctrl.row_stats().misses, 1);
    }

    #[test]
    fn drain_breaks_same_cycle_ties_by_sequence() {
        // Two independent drains of the heap must never reorder; equal completion cycles
        // (not produced by a real schedule, but allowed by the API) fall back to sequence.
        let (mut ctrl, map) = setup();
        let addrs: Vec<u64> = (0..6).map(|i| 0x4_0000 + i * 64).collect();
        let out = run_reads(&mut ctrl, &map, &addrs);
        let mut pairs: Vec<(u64, u64)> = out
            .iter()
            .map(|c| (c.completion.complete_cycle.as_u64(), c.seq))
            .collect();
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(pairs, sorted, "(cycle, seq) drain order");
        pairs.dedup_by_key(|p| p.0);
        assert_eq!(pairs.len(), out.len(), "distinct bursts on one bus");
    }

    #[test]
    fn event_tick_matches_reference_tick_on_mixed_traffic() {
        // Unit-level spot check (the integration test covers random traffic): same enqueue
        // schedule, one controller jumped in one tick call, one stepped cycle by cycle.
        let (mut fast, map) = setup();
        let (mut slow, _) = setup();
        for i in 0..32u64 {
            let addr = (i % 7) * 0x40_000 + i * 64;
            let req = if i % 3 == 0 {
                Request::write(i, addr, Cycle::new(0), 0)
            } else {
                Request::read(i, addr, Cycle::new(0), 0)
            };
            fast.enqueue(req, map.decode(addr), 0, i);
            slow.enqueue(req, map.decode(addr), 0, i);
        }
        fast.tick(300_000);
        for now in 0..=300_000u64 {
            slow.tick_reference(now);
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        fast.drain_completed(300_000, &mut a);
        slow.drain_completed(300_000, &mut b);
        assert_eq!(a.len(), 32);
        let key = |v: &[ChannelCompletion]| -> Vec<(u64, u64)> {
            v.iter()
                .map(|c| (c.completion.id.0, c.completion.complete_cycle.as_u64()))
                .collect()
        };
        assert_eq!(key(&a), key(&b), "event tick must match the reference");
        assert_eq!(fast.row_stats(), slow.row_stats());
    }

    #[test]
    fn next_event_is_exact_for_a_single_queued_read() {
        let (mut ctrl, map) = setup();
        ctrl.tick(0);
        ctrl.enqueue(
            Request::read(0, 0x1000, Cycle::new(0), 0),
            map.decode(0x1000),
            0,
            0,
        );
        let e = ctrl.next_event(0).expect("queued work has a next event");
        assert!(e > 0);
        // Ticking to the promised cycle must issue the command; the follow-up event is the
        // completion itself, and ticking there makes it drainable.
        ctrl.tick(e);
        let c = ctrl.next_event(e).expect("completion is scheduled");
        assert!(c > e);
        ctrl.tick(c);
        let mut out = Vec::new();
        ctrl.drain_completed(c, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].completion.complete_cycle.as_u64(), c);
        assert_eq!(ctrl.next_event(c), None, "idle controller has no events");
    }
}
