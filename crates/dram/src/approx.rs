//! Simplified "external memory simulator" stand-ins.
//!
//! The paper finds that the de-facto standard cycle-accurate DRAM simulators — DRAMsim3,
//! Ramulator and Ramulator 2 — poorly resemble the behaviour of the actual memory systems
//! (unrealistically low latencies, bandwidths above the theoretical peak or capped far below
//! the measured one, distorted row-buffer locality). The real simulators are not available
//! here, so [`ApproxDramSim`] reproduces exactly those *documented pathologies* with a simple
//! queueing model, letting the characterization experiments (Figs. 4–7) show the same
//! qualitative contrasts against the detailed [`crate::DramSystem`].

use mess_types::{
    AccessKind, Bandwidth, Completion, CompletionQueue, Cycle, Frequency, IssueOutcome, Latency,
    MemoryBackend, MemoryStats, Request, CACHE_LINE_BYTES,
};
use serde::{Deserialize, Serialize};

/// Which external simulator's error profile to reproduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApproxProfile {
    /// DRAMsim3-like: latency starts well below the real load-to-use latency, grows roughly
    /// linearly with bandwidth, never saturates, and the row-buffer hit rate is inflated
    /// (84–93 %) with the highest rates for dominantly-read and dominantly-write traffic.
    Dramsim3Like,
    /// Ramulator-like: an essentially fixed ~25 ns latency over the whole bandwidth range and
    /// an uncapped bandwidth that can exceed the theoretical maximum by ~1.8×.
    RamulatorLike,
    /// Ramulator 2-like: very low latencies and a maximum bandwidth capped below half of the
    /// actual system's measured bandwidth.
    Ramulator2Like,
}

impl ApproxProfile {
    /// All profiles, for exhaustive tests and sweeps.
    pub const ALL: [ApproxProfile; 3] = [
        ApproxProfile::Dramsim3Like,
        ApproxProfile::RamulatorLike,
        ApproxProfile::Ramulator2Like,
    ];

    /// Display name used in experiment outputs.
    pub fn label(self) -> &'static str {
        match self {
            ApproxProfile::Dramsim3Like => "dramsim3-like",
            ApproxProfile::RamulatorLike => "ramulator-like",
            ApproxProfile::Ramulator2Like => "ramulator2-like",
        }
    }

    /// Base (unloaded) round-trip latency from the memory controller, in ns.
    fn base_latency_ns(self) -> f64 {
        match self {
            ApproxProfile::Dramsim3Like => 55.0,
            ApproxProfile::RamulatorLike => 25.0,
            ApproxProfile::Ramulator2Like => 35.0,
        }
    }

    /// Fraction of the theoretical bandwidth at which the single-server queue saturates.
    /// `None` disables queueing entirely (bandwidth is unbounded).
    fn bandwidth_cap_fraction(self) -> Option<f64> {
        match self {
            ApproxProfile::Dramsim3Like => Some(0.88),
            ApproxProfile::RamulatorLike => None,
            ApproxProfile::Ramulator2Like => Some(0.43),
        }
    }
}

/// A deliberately simplified external-DRAM-simulator model.
#[derive(Debug)]
pub struct ApproxDramSim {
    profile: ApproxProfile,
    cpu_frequency: Frequency,
    theoretical: Bandwidth,
    name: String,
    now: Cycle,
    /// Cycle at which the single service channel becomes free.
    server_free: u64,
    /// Service time per cache line in CPU cycles (0 = no queueing).
    service_cycles: u64,
    /// Precomputed `(service_cycles.max(1) * 64) as f64`, the utilisation-proxy horizon,
    /// hoisted out of the per-request accept path (the quotient stays bit-identical).
    utilisation_horizon: f64,
    base_latency_cycles: u64,
    queue: CompletionQueue,
    stats: MemoryStats,
    /// Running read/write counters for the synthetic row-buffer statistics.
    reads_seen: u64,
    writes_seen: u64,
    /// Fractional accumulators for deterministic outcome assignment.
    hit_accum: f64,
    empty_accum: f64,
}

impl ApproxDramSim {
    /// Creates a model of `profile` for a memory system with the given theoretical peak
    /// bandwidth, driven at `cpu_frequency`.
    pub fn new(profile: ApproxProfile, theoretical: Bandwidth, cpu_frequency: Frequency) -> Self {
        let service_cycles = match profile.bandwidth_cap_fraction() {
            None => 0,
            Some(frac) => {
                let cap_gbs = theoretical.as_gbs() * frac;
                let ns_per_line = CACHE_LINE_BYTES as f64 / cap_gbs;
                Latency::from_ns(ns_per_line)
                    .to_cycles(cpu_frequency)
                    .as_u64()
                    .max(1)
            }
        };
        let base_latency_cycles = Latency::from_ns(profile.base_latency_ns())
            .to_cycles(cpu_frequency)
            .as_u64()
            .max(1);
        ApproxDramSim {
            name: profile.label().to_string(),
            profile,
            cpu_frequency,
            theoretical,
            now: Cycle::ZERO,
            server_free: 0,
            service_cycles,
            utilisation_horizon: (service_cycles.max(1) * 64) as f64,
            base_latency_cycles,
            queue: CompletionQueue::new(),
            stats: MemoryStats::default(),
            reads_seen: 0,
            writes_seen: 0,
            hit_accum: 0.0,
            empty_accum: 0.0,
        }
    }

    /// The profile this model reproduces.
    pub fn profile(&self) -> ApproxProfile {
        self.profile
    }

    /// The CPU frequency the model converts its nanosecond parameters with.
    pub fn cpu_frequency(&self) -> Frequency {
        self.cpu_frequency
    }

    /// The theoretical peak bandwidth this model was configured against.
    pub fn theoretical_bandwidth(&self) -> Bandwidth {
        self.theoretical
    }

    /// Synthetic row-buffer hit rate as a function of the traffic mix and utilisation,
    /// reproducing the distortions reported in paper Fig. 7.
    fn hit_rate(&self, utilisation: f64) -> f64 {
        let total = (self.reads_seen + self.writes_seen).max(1);
        let read_frac = self.reads_seen as f64 / total as f64;
        // 0 at pure read or pure write, 1 at a 50/50 mix.
        let mixness = 1.0 - (2.0 * read_frac - 1.0).abs();
        match self.profile {
            // Inflated hit rates, highest for the dominant-read / dominant-write extremes.
            ApproxProfile::Dramsim3Like => (0.93 - 0.09 * mixness).clamp(0.0, 1.0),
            // Closer to reality at low write shares but overestimating hits for write-heavy
            // traffic, mildly decreasing with utilisation.
            ApproxProfile::RamulatorLike => {
                (0.82 - 0.20 * utilisation + 0.12 * (1.0 - read_frac)).clamp(0.0, 1.0)
            }
            ApproxProfile::Ramulator2Like => (0.90 - 0.10 * utilisation).clamp(0.0, 1.0),
        }
    }

    /// Deterministically classifies one access into hit/empty/miss according to the target
    /// rates, using fractional accumulators instead of randomness.
    fn classify(&mut self, utilisation: f64) {
        let hit_rate = self.hit_rate(utilisation);
        let empty_rate = (1.0 - hit_rate) * 0.6;
        self.hit_accum += hit_rate;
        self.empty_accum += empty_rate;
        if self.hit_accum >= 1.0 {
            self.hit_accum -= 1.0;
            self.stats.row_buffer.hits += 1;
        } else if self.empty_accum >= 1.0 {
            self.empty_accum -= 1.0;
            self.stats.row_buffer.empties += 1;
        } else {
            self.stats.row_buffer.misses += 1;
        }
    }
}

impl MemoryBackend for ApproxDramSim {
    fn tick(&mut self, now: Cycle) {
        if now > self.now {
            self.now = now;
        }
    }

    fn issue(&mut self, batch: &[Request]) -> IssueOutcome {
        for request in batch {
            self.accept(request);
        }
        IssueOutcome::all(batch.len())
    }

    fn drain_completed(&mut self, out: &mut Vec<Completion>) -> usize {
        self.queue.drain_due(self.now, &mut self.stats, out)
    }

    fn next_event(&self) -> Option<Cycle> {
        self.queue.next_ready()
    }

    fn pending(&self) -> usize {
        self.queue.len()
    }

    fn stats(&self) -> MemoryStats {
        self.stats
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl ApproxDramSim {
    /// Accepts one request (the approximated simulators never push back).
    fn accept(&mut self, request: &Request) {
        let issue = request.issue_cycle.max(self.now).as_u64();
        match request.kind {
            AccessKind::Read => self.reads_seen += 1,
            AccessKind::Write => self.writes_seen += 1,
        }

        let complete = if self.service_cycles == 0 {
            // No queueing: fixed latency, unbounded bandwidth (the Ramulator pathology).
            issue + self.base_latency_cycles
        } else {
            let start = self.server_free.max(issue);
            self.server_free = start + self.service_cycles;
            start + self.service_cycles + self.base_latency_cycles
        };

        // Utilisation proxy: how far ahead of "now" the server has been booked.
        let backlog = self.server_free.saturating_sub(issue) as f64;
        let utilisation = (backlog / self.utilisation_horizon).min(1.0);
        self.classify(utilisation);

        self.queue.schedule(Completion {
            id: request.id,
            addr: request.addr,
            kind: request.kind,
            issue_cycle: request.issue_cycle,
            complete_cycle: Cycle::new(complete),
            core: request.core,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(profile: ApproxProfile) -> ApproxDramSim {
        ApproxDramSim::new(
            profile,
            Bandwidth::from_gbs(128.0),
            Frequency::from_ghz(2.0),
        )
    }

    fn drive(sim: &mut ApproxDramSim, n: u64, gap: u64, write_every: Option<u64>) -> (f64, f64) {
        let freq = sim.cpu_frequency();
        let mut out = Vec::new();
        for i in 0..n {
            let now = i * gap;
            sim.tick(Cycle::new(now));
            let req = match write_every {
                Some(k) if i % k == 0 => Request::write(i, i * 64, Cycle::new(now), 0),
                _ => Request::read(i, i * 64, Cycle::new(now), 0),
            };
            sim.try_enqueue(req).unwrap();
        }
        let end = n * gap + 10_000_000;
        sim.tick(Cycle::new(end));
        sim.drain_completed(&mut out);
        assert_eq!(out.len() as u64, n);
        let total_lat: u64 = out.iter().map(|c| c.latency().as_u64()).sum();
        let avg_lat_ns = Cycle::new(total_lat / n).to_latency(freq).as_ns();
        // Offered bandwidth over the injection period.
        let elapsed_ns = Cycle::new(n * gap).to_latency(freq).as_ns();
        let bw = (n * CACHE_LINE_BYTES) as f64 / elapsed_ns;
        (bw, avg_lat_ns)
    }

    #[test]
    fn ramulator_like_has_fixed_latency_and_unbounded_bandwidth() {
        let mut s = sim(ApproxProfile::RamulatorLike);
        // Inject far faster than the theoretical peak: 1 line per cycle at 2 GHz = 128 GB/s*...
        let (bw, lat) = drive(&mut s, 20_000, 1, None);
        assert!(bw > 120.0, "offered bandwidth {bw}");
        assert!(
            (lat - 25.0).abs() < 2.0,
            "latency should stay ~25 ns, got {lat}"
        );
        // The accepted bandwidth equals the offered one: nothing ever queues.
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn dramsim3_like_latency_grows_but_never_saturates_hard() {
        let mut slow = sim(ApproxProfile::Dramsim3Like);
        let (_, lat_low) = drive(&mut slow, 5_000, 40, None);
        // Two lines per cycle at 2 GHz offer 256 GB/s, far above the model's ~113 GB/s service
        // cap, so the queue grows and the latency with it.
        let mut fast = sim(ApproxProfile::Dramsim3Like);
        let mut out = Vec::new();
        for i in 0..5_000u64 {
            fast.tick(Cycle::new(i));
            for j in 0..2u64 {
                fast.try_enqueue(Request::read(2 * i + j, (2 * i + j) * 64, Cycle::new(i), 0))
                    .unwrap();
            }
        }
        fast.tick(Cycle::new(50_000_000));
        fast.drain_completed(&mut out);
        let total_lat: u64 = out.iter().map(|c| c.latency().as_u64()).sum();
        let lat_high = Cycle::new(total_lat / out.len() as u64)
            .to_latency(fast.cpu_frequency())
            .as_ns();
        assert!(lat_low < 70.0, "low-load latency {lat_low}");
        assert!(lat_high > lat_low, "latency must grow with load");
    }

    #[test]
    fn ramulator2_like_caps_bandwidth_below_half() {
        let mut s = sim(ApproxProfile::Ramulator2Like);
        // Saturate: the sustained completion rate must be ~43% of the theoretical bandwidth.
        let n = 40_000u64;
        let mut out = Vec::new();
        let mut now = 0u64;
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut last_completion = 0u64;
        while completed < n {
            s.tick(Cycle::new(now));
            if issued < n && s.pending() < 64 {
                s.try_enqueue(Request::read(issued, issued * 64, Cycle::new(now), 0))
                    .unwrap();
                issued += 1;
            }
            out.clear();
            s.drain_completed(&mut out);
            for c in &out {
                completed += 1;
                last_completion = c.complete_cycle.as_u64();
            }
            now += 1;
        }
        let elapsed_ns = Cycle::new(last_completion)
            .to_latency(Frequency::from_ghz(2.0))
            .as_ns();
        let bw = (n * CACHE_LINE_BYTES) as f64 / elapsed_ns;
        assert!(
            bw < 128.0 * 0.5,
            "Ramulator2-like bandwidth {bw} must stay below half of 128"
        );
        assert!(bw > 128.0 * 0.3, "but it should still reach ~43%, got {bw}");
    }

    #[test]
    fn dramsim3_like_row_hits_are_inflated_for_pure_and_mixed_traffic() {
        let mut pure = sim(ApproxProfile::Dramsim3Like);
        let _ = drive(&mut pure, 10_000, 10, None);
        let pure_hits = pure.stats().row_buffer.hit_rate();
        let mut mixed = sim(ApproxProfile::Dramsim3Like);
        let _ = drive(&mut mixed, 10_000, 10, Some(2));
        let mixed_hits = mixed.stats().row_buffer.hit_rate();
        assert!(pure_hits > 0.88, "pure-read hit rate {pure_hits}");
        assert!(mixed_hits > 0.80, "mixed hit rate {mixed_hits}");
        assert!(
            pure_hits > mixed_hits,
            "extremes must show the highest hit rates"
        );
    }

    #[test]
    fn row_buffer_outcomes_always_sum_to_requests() {
        for profile in ApproxProfile::ALL {
            let mut s = sim(profile);
            let _ = drive(&mut s, 3_000, 7, Some(3));
            assert_eq!(s.stats().row_buffer.total(), 3_000, "{}", profile.label());
        }
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = ApproxProfile::ALL.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }
}
