//! DRAM device timing parameters and presets.
//!
//! Timings are specified in nanoseconds (the unit manufacturers quote for most constraints)
//! together with the data-rate of the interface. [`DramTiming::to_cpu_cycles`] converts them
//! to the CPU clock domain once, so the controller never performs clock-domain crossings at
//! run time.

use mess_types::{Bandwidth, Frequency, Latency};
use serde::{Deserialize, Serialize};

/// Named device presets used by the platform configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DramPreset {
    /// DDR4-2666 (Skylake / Cascade Lake / Power9 class servers).
    Ddr4_2666,
    /// DDR4-3200 (Zen2 class servers).
    Ddr4_3200,
    /// DDR5-4800 (Graviton 3 / Sapphire Rapids class servers).
    Ddr5_4800,
    /// DDR5-5600 (CXL memory-expander backend).
    Ddr5_5600,
    /// One HBM2 stack channel group (A64FX class).
    Hbm2,
    /// One HBM2E stack channel group (H100 class).
    Hbm2e,
    /// An Optane-like persistent memory DIMM (slow writes, media latency dominated).
    OptaneLike,
}

impl DramPreset {
    /// All presets, for exhaustive tests.
    pub const ALL: [DramPreset; 7] = [
        DramPreset::Ddr4_2666,
        DramPreset::Ddr4_3200,
        DramPreset::Ddr5_4800,
        DramPreset::Ddr5_5600,
        DramPreset::Hbm2,
        DramPreset::Hbm2e,
        DramPreset::OptaneLike,
    ];

    /// The timing parameter set of this preset.
    pub fn timing(self) -> DramTiming {
        match self {
            DramPreset::Ddr4_2666 => DramTiming {
                name: "DDR4-2666",
                data_rate_mtps: 2666.0,
                bus_bytes: 8,
                burst_length: 8,
                banks_per_channel: 16,
                bank_groups: 4,
                ranks: 2,
                row_bytes: 8192,
                t_cl_ns: 14.25,
                t_rcd_ns: 14.25,
                t_rp_ns: 14.25,
                t_ras_ns: 32.0,
                t_wr_ns: 15.0,
                t_wtr_ns: 7.5,
                t_ccd_ns: 3.0,
                t_rrd_ns: 4.9,
                t_faw_ns: 25.0,
                t_refi_ns: 7800.0,
                t_rfc_ns: 350.0,
                cwl_ns: 10.5,
                controller_overhead_ns: 16.0,
                write_latency_multiplier: 1.0,
            },
            DramPreset::Ddr4_3200 => DramTiming {
                name: "DDR4-3200",
                data_rate_mtps: 3200.0,
                t_cl_ns: 13.75,
                t_rcd_ns: 13.75,
                t_rp_ns: 13.75,
                ..DramPreset::Ddr4_2666.timing()
            },
            DramPreset::Ddr5_4800 => DramTiming {
                name: "DDR5-4800",
                data_rate_mtps: 4800.0,
                bus_bytes: 4,
                burst_length: 16,
                banks_per_channel: 32,
                bank_groups: 8,
                t_cl_ns: 16.6,
                t_rcd_ns: 16.6,
                t_rp_ns: 16.6,
                t_ras_ns: 32.0,
                t_refi_ns: 3900.0,
                t_rfc_ns: 295.0,
                controller_overhead_ns: 18.0,
                ..DramPreset::Ddr4_2666.timing()
            },
            DramPreset::Ddr5_5600 => DramTiming {
                name: "DDR5-5600",
                data_rate_mtps: 5600.0,
                t_cl_ns: 16.4,
                t_rcd_ns: 16.4,
                t_rp_ns: 16.4,
                ..DramPreset::Ddr5_4800.timing()
            },
            DramPreset::Hbm2 => DramTiming {
                name: "HBM2",
                // Modelled as one 128-byte-wide pseudo-channel group delivering 32 GB/s.
                data_rate_mtps: 2000.0,
                bus_bytes: 16,
                burst_length: 4,
                banks_per_channel: 32,
                bank_groups: 8,
                ranks: 1,
                row_bytes: 2048,
                t_cl_ns: 14.0,
                t_rcd_ns: 14.0,
                t_rp_ns: 14.0,
                t_ras_ns: 28.0,
                t_wr_ns: 16.0,
                t_wtr_ns: 8.0,
                t_ccd_ns: 2.0,
                t_rrd_ns: 4.0,
                t_faw_ns: 16.0,
                t_refi_ns: 3900.0,
                t_rfc_ns: 260.0,
                cwl_ns: 7.0,
                controller_overhead_ns: 24.0,
                write_latency_multiplier: 1.0,
            },
            DramPreset::Hbm2e => DramTiming {
                name: "HBM2E",
                data_rate_mtps: 3200.0,
                controller_overhead_ns: 30.0,
                ..DramPreset::Hbm2.timing()
            },
            DramPreset::OptaneLike => DramTiming {
                name: "Optane-like",
                data_rate_mtps: 2666.0,
                bus_bytes: 8,
                burst_length: 8,
                banks_per_channel: 16,
                bank_groups: 4,
                ranks: 1,
                row_bytes: 4096,
                t_cl_ns: 170.0,
                t_rcd_ns: 120.0,
                t_rp_ns: 60.0,
                t_ras_ns: 200.0,
                t_wr_ns: 300.0,
                t_wtr_ns: 40.0,
                t_ccd_ns: 12.0,
                t_rrd_ns: 12.0,
                t_faw_ns: 60.0,
                t_refi_ns: 1.0e9,
                t_rfc_ns: 0.0,
                cwl_ns: 100.0,
                controller_overhead_ns: 40.0,
                write_latency_multiplier: 3.0,
            },
        }
    }

    /// Theoretical peak bandwidth of one channel of this preset.
    pub fn channel_bandwidth(self) -> Bandwidth {
        self.timing().channel_bandwidth()
    }
}

/// DRAM timing and geometry parameters for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Human-readable device name.
    pub name: &'static str,
    /// Interface data rate in mega-transfers per second.
    pub data_rate_mtps: f64,
    /// Data-bus width in bytes.
    pub bus_bytes: u32,
    /// Burst length in transfers (a cache line is `bus_bytes * burst_length` bytes).
    pub burst_length: u32,
    /// Banks per channel (across all bank groups).
    pub banks_per_channel: u32,
    /// Bank groups per channel.
    pub bank_groups: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u64,
    /// CAS latency.
    pub t_cl_ns: f64,
    /// RAS-to-CAS delay (activate to column command).
    pub t_rcd_ns: f64,
    /// Row precharge time.
    pub t_rp_ns: f64,
    /// Minimum row-active time.
    pub t_ras_ns: f64,
    /// Write recovery time (write burst end to precharge).
    pub t_wr_ns: f64,
    /// Write-to-read turnaround.
    pub t_wtr_ns: f64,
    /// Column-to-column delay (same bank group).
    pub t_ccd_ns: f64,
    /// Activate-to-activate delay (different banks).
    pub t_rrd_ns: f64,
    /// Four-activate window.
    pub t_faw_ns: f64,
    /// Average refresh interval.
    pub t_refi_ns: f64,
    /// Refresh cycle time (channel blocked).
    pub t_rfc_ns: f64,
    /// CAS write latency.
    pub cwl_ns: f64,
    /// Fixed controller + PHY + on-package interconnect overhead added to every access.
    pub controller_overhead_ns: f64,
    /// Multiplier applied to write-related service times (used by the Optane-like preset).
    pub write_latency_multiplier: f64,
}

impl DramTiming {
    /// Duration of one full cache-line burst on the data bus.
    pub fn burst_time_ns(&self) -> f64 {
        // Two transfers per clock on DDR interfaces: transfer time = BL / data-rate.
        self.burst_length as f64 / (self.data_rate_mtps * 1e6) * 1e9
    }

    /// Bytes transferred per burst.
    pub fn burst_bytes(&self) -> u64 {
        self.bus_bytes as u64 * self.burst_length as u64
    }

    /// Theoretical peak bandwidth of one channel in GB/s.
    pub fn channel_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_gbs(self.data_rate_mtps * 1e6 * self.bus_bytes as f64 / 1e9)
    }

    /// Unloaded read service time: activate + CAS + burst + controller overhead.
    pub fn unloaded_read_ns(&self) -> f64 {
        self.t_rcd_ns + self.t_cl_ns + self.burst_time_ns() + self.controller_overhead_ns
    }

    /// Converts this timing set to CPU-clock cycles at the given frequency.
    pub fn to_cpu_cycles(&self, cpu: Frequency) -> TimingCycles {
        let c = |ns: f64| -> u64 { Latency::from_ns(ns).to_cycles(cpu).as_u64().max(1) };
        TimingCycles {
            cl: c(self.t_cl_ns),
            rcd: c(self.t_rcd_ns),
            rp: c(self.t_rp_ns),
            ras: c(self.t_ras_ns),
            wr: c(self.t_wr_ns * self.write_latency_multiplier),
            wtr: c(self.t_wtr_ns),
            ccd: c(self.t_ccd_ns),
            rrd: c(self.t_rrd_ns),
            faw: c(self.t_faw_ns),
            refi: c(self.t_refi_ns),
            rfc: if self.t_rfc_ns <= 0.0 {
                0
            } else {
                c(self.t_rfc_ns)
            },
            cwl: c(self.cwl_ns),
            burst: c(self.burst_time_ns()),
            overhead: c(self.controller_overhead_ns),
        }
    }
}

/// Timing parameters converted to CPU-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingCycles {
    /// CAS latency.
    pub cl: u64,
    /// Activate-to-column delay.
    pub rcd: u64,
    /// Precharge time.
    pub rp: u64,
    /// Minimum row-active time.
    pub ras: u64,
    /// Write recovery.
    pub wr: u64,
    /// Write-to-read turnaround.
    pub wtr: u64,
    /// Column-to-column delay.
    pub ccd: u64,
    /// Activate-to-activate delay.
    pub rrd: u64,
    /// Four-activate window.
    pub faw: u64,
    /// Refresh interval.
    pub refi: u64,
    /// Refresh cycle time (zero disables refresh).
    pub rfc: u64,
    /// CAS write latency.
    pub cwl: u64,
    /// Data-bus burst occupancy.
    pub burst: u64,
    /// Fixed controller overhead.
    pub overhead: u64,
}

impl TimingCycles {
    /// CAS latency of a column command of the given kind (CWL for writes, CL for reads).
    pub fn data_latency(&self, is_write: bool) -> u64 {
        if is_write {
            self.cwl
        } else {
            self.cl
        }
    }

    /// Cycles from a read's column command to the end of its data burst.
    pub fn read_data_end(&self) -> u64 {
        self.cl + self.burst
    }

    /// Cycles from a write's column command to the end of its data burst plus the write
    /// recovery window tWR (the earliest a precharge may follow).
    pub fn write_data_end(&self) -> u64 {
        self.cwl + self.burst + self.wr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_bandwidths_match_jedec_peaks() {
        let cases = [
            (DramPreset::Ddr4_2666, 21.3),
            (DramPreset::Ddr4_3200, 25.6),
            (DramPreset::Ddr5_4800, 19.2), // 32-bit DDR5 sub-channel
            (DramPreset::Hbm2, 32.0),
            (DramPreset::Hbm2e, 51.2),
        ];
        for (preset, expected) in cases {
            let bw = preset.channel_bandwidth().as_gbs();
            assert!(
                (bw - expected).abs() / expected < 0.02,
                "{:?}: expected ~{expected} GB/s, got {bw}",
                preset
            );
        }
    }

    #[test]
    fn burst_moves_a_cache_line() {
        for preset in DramPreset::ALL {
            let t = preset.timing();
            assert_eq!(t.burst_bytes(), 64, "{}", t.name);
            assert!(t.burst_time_ns() > 0.0);
        }
    }

    #[test]
    fn unloaded_read_latency_is_realistic() {
        // DDR4 device read latency ~45-60 ns including controller overhead.
        let t = DramPreset::Ddr4_2666.timing();
        let lat = t.unloaded_read_ns();
        assert!(lat > 35.0 && lat < 70.0, "unloaded read {lat} ns");
        // Optane is an order of magnitude slower.
        let o = DramPreset::OptaneLike.timing();
        assert!(o.unloaded_read_ns() > 300.0);
    }

    #[test]
    fn cycle_conversion_is_positive_and_scales_with_frequency() {
        let t = DramPreset::Ddr5_4800.timing();
        let at2 = t.to_cpu_cycles(Frequency::from_ghz(2.0));
        let at3 = t.to_cpu_cycles(Frequency::from_ghz(3.0));
        assert!(at3.cl > at2.cl);
        assert!(at2.rcd >= 1 && at2.rp >= 1 && at2.burst >= 1);
        assert!(at2.refi > at2.rfc);
    }

    #[test]
    fn writes_are_penalised_relative_to_reads() {
        for preset in [
            DramPreset::Ddr4_2666,
            DramPreset::Ddr5_4800,
            DramPreset::Hbm2,
        ] {
            let t = preset.timing();
            assert!(t.t_wr_ns > 0.0 && t.t_wtr_ns > 0.0, "{}", t.name);
        }
    }

    #[test]
    fn presets_are_distinct() {
        let mut names: Vec<&str> = DramPreset::ALL.iter().map(|p| p.timing().name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), DramPreset::ALL.len());
    }
}
