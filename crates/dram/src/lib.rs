//! Cycle-level DRAM memory-system simulator.
//!
//! This crate is the "actual hardware" stand-in of the reproduction: a multi-channel DRAM
//! model with banks, row buffers, FR-FCFS scheduling, write-drain watermarks, refresh and the
//! JEDEC-style timing constraints (tRCD, tRP, CL/CWL, tWR, tWTR, tCCD, tFAW, tRFC/tREFI) that
//! produce the memory behaviour the Mess paper characterizes: latency that rises with load,
//! writes that reduce achievable bandwidth and saturate earlier, and row-buffer misses that
//! can make the measured bandwidth *decline* while latency keeps growing.
//!
//! Modules:
//!
//! * [`timing`] — DRAM timing parameters and presets (DDR4-2666/3200, DDR5-4800/5600, HBM2,
//!   HBM2E, an Optane-like device).
//! * [`address`] — physical-address to channel/rank/bank-group/bank/row/column mapping.
//! * [`bank`] — per-bank state machine.
//! * [`controller`] — a single-channel memory controller with FR-FCFS scheduling.
//! * [`system`] — [`DramSystem`], the multi-channel [`mess_types::MemoryBackend`].
//! * [`approx`] — deliberately simplified models reproducing the error modes the paper
//!   attributes to DRAMsim3, Ramulator and Ramulator 2.
//!
//! # Performance notes
//!
//! The detailed model is the expensive tail of every sweep (the paper's §V-B point:
//! cycle-accurate DRAM simulation is 13–15× slower than the Mess model), so its hot path
//! is organized around two ideas:
//!
//! * **Exact event scheduling.** A candidate command's readiness is a maximum of absolute
//!   deadlines (its bank's tRCD/tRP/tRAS windows, the rank's tRRD/tFAW activate ring,
//!   refresh blocking, data-bus occupancy), none of which depend on the current cycle. The
//!   controller therefore computes the *exact* cycle of the next command issue instead of
//!   being stepped to it, `ChannelController::tick` jumps straight between command issues
//!   and refresh deadlines, and [`MemoryBackend::next_event`] reports the precise next
//!   issue or data return. A cycle-skipping issuer (`mess_cpu::Engine::run`) ticks the
//!   model a handful of times per request on low-occupancy traffic rather than once per
//!   cycle — the schedule stays bit-identical to the retained cycle-by-cycle reference
//!   path (`DramSystem::tick_reference`), which the `event_equivalence` test enforces.
//! * **Flat state, allocation-free steady state.** Per-bank timing state lives in
//!   [`bank::BankArray`], a structure of arrays keyed by the flat `(rank, bank)` index, so
//!   the FR-FCFS scan walks dense `Vec<u64>` columns; the per-rank tFAW history is a flat
//!   four-entry ring; scheduled completions sit in a min-heap keyed by (completion cycle,
//!   acceptance sequence), popped directly into the caller's reusable drain buffer. After
//!   warm-up, the issue → complete → drain cycle performs no heap allocation.
//!
//! [`MemoryBackend::next_event`]: mess_types::MemoryBackend::next_event
//!
//! # Example
//!
//! ```
//! use mess_dram::{DramConfig, DramSystem, timing::DramPreset};
//! use mess_types::{Cycle, Frequency, MemoryBackend, Request};
//!
//! let config = DramConfig::new(DramPreset::Ddr4_2666, 6, Frequency::from_ghz(2.1));
//! let mut dram = DramSystem::new(config);
//! dram.try_enqueue(Request::read(0, 0x4000, Cycle::new(0), 0)).unwrap();
//! // The controller issues DRAM commands as simulated time advances; a later tick lets the
//! // completed data burst become visible to the CPU side.
//! dram.tick(Cycle::new(1_000));
//! dram.tick(Cycle::new(2_000));
//! let mut done = Vec::new();
//! dram.drain_completed(&mut done);
//! assert_eq!(done.len(), 1);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod address;
pub mod approx;
pub mod bank;
pub mod controller;
pub mod system;
pub mod timing;

pub use approx::{ApproxDramSim, ApproxProfile};
pub use system::{DramConfig, DramSystem};
pub use timing::{DramPreset, DramTiming};
