//! Cycle-level DRAM memory-system simulator.
//!
//! This crate is the "actual hardware" stand-in of the reproduction: a multi-channel DRAM
//! model with banks, row buffers, FR-FCFS scheduling, write-drain watermarks, refresh and the
//! JEDEC-style timing constraints (tRCD, tRP, CL/CWL, tWR, tWTR, tCCD, tFAW, tRFC/tREFI) that
//! produce the memory behaviour the Mess paper characterizes: latency that rises with load,
//! writes that reduce achievable bandwidth and saturate earlier, and row-buffer misses that
//! can make the measured bandwidth *decline* while latency keeps growing.
//!
//! Modules:
//!
//! * [`timing`] — DRAM timing parameters and presets (DDR4-2666/3200, DDR5-4800/5600, HBM2,
//!   HBM2E, an Optane-like device).
//! * [`address`] — physical-address to channel/rank/bank-group/bank/row/column mapping.
//! * [`bank`] — per-bank state machine.
//! * [`controller`] — a single-channel memory controller with FR-FCFS scheduling.
//! * [`system`] — [`DramSystem`], the multi-channel [`mess_types::MemoryBackend`].
//! * [`approx`] — deliberately simplified models reproducing the error modes the paper
//!   attributes to DRAMsim3, Ramulator and Ramulator 2.
//!
//! # Example
//!
//! ```
//! use mess_dram::{DramConfig, DramSystem, timing::DramPreset};
//! use mess_types::{Cycle, Frequency, MemoryBackend, Request};
//!
//! let config = DramConfig::new(DramPreset::Ddr4_2666, 6, Frequency::from_ghz(2.1));
//! let mut dram = DramSystem::new(config);
//! dram.try_enqueue(Request::read(0, 0x4000, Cycle::new(0), 0)).unwrap();
//! // The controller issues DRAM commands as simulated time advances; a later tick lets the
//! // completed data burst become visible to the CPU side.
//! dram.tick(Cycle::new(1_000));
//! dram.tick(Cycle::new(2_000));
//! let mut done = Vec::new();
//! dram.drain_completed(&mut done);
//! assert_eq!(done.len(), 1);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod address;
pub mod approx;
pub mod bank;
pub mod controller;
pub mod system;
pub mod timing;

pub use approx::{ApproxDramSim, ApproxProfile};
pub use system::{DramConfig, DramSystem};
pub use timing::{DramPreset, DramTiming};
