//! The multi-channel DRAM system: the [`mess_types::MemoryBackend`] used as the "actual
//! hardware" reference throughout the reproduction.

use crate::address::AddressMapping;
use crate::bank::RowOutcome;
use crate::controller::{ChannelCompletion, ChannelController, ControllerConfig};
use crate::timing::{DramPreset, DramTiming};
use mess_types::{
    Bandwidth, Completion, CompletionQueue, Cycle, Frequency, IssueOutcome, MemoryBackend,
    MemoryStats, Request,
};
use serde::{Deserialize, Serialize};

/// Configuration of a [`DramSystem`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DramConfig {
    /// Device preset (timing + geometry of one channel).
    pub preset: DramPreset,
    /// Number of memory channels.
    pub channels: u32,
    /// CPU clock frequency (the clock domain of [`MemoryBackend::tick`]).
    pub cpu_frequency: Frequency,
    /// Read/write queue depths and scheduling policy.
    #[serde(skip)]
    pub controller: ControllerConfig,
}

impl DramConfig {
    /// Creates a configuration with default controller parameters.
    pub fn new(preset: DramPreset, channels: u32, cpu_frequency: Frequency) -> Self {
        DramConfig {
            preset,
            channels,
            cpu_frequency,
            controller: ControllerConfig::default(),
        }
    }

    /// Theoretical peak bandwidth of the whole memory system.
    pub fn theoretical_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_gbs(self.preset.channel_bandwidth().as_gbs() * self.channels as f64)
    }

    /// The timing parameters of the configured device.
    pub fn timing(&self) -> DramTiming {
        self.preset.timing()
    }
}

/// A multi-channel DRAM memory system.
#[derive(Debug)]
pub struct DramSystem {
    config: DramConfig,
    mapping: AddressMapping,
    channels: Vec<ChannelController>,
    now: Cycle,
    stats: MemoryStats,
    name: String,
    scratch: Vec<ChannelCompletion>,
    /// Completions already collected from the channels, ordered for draining.
    ready: CompletionQueue,
    /// Acceptance sequence counter, threaded through the controllers for drain-order ties.
    accept_seq: u64,
}

impl DramSystem {
    /// Builds the DRAM system described by `config`.
    pub fn new(config: DramConfig) -> Self {
        let timing = config.preset.timing();
        let cycles = timing.to_cpu_cycles(config.cpu_frequency);
        let mapping = AddressMapping::new(
            config.channels,
            timing.ranks,
            timing.banks_per_channel,
            timing.row_bytes,
        );
        let channels = (0..config.channels)
            .map(|_| {
                ChannelController::new(
                    cycles,
                    timing.banks_per_channel,
                    timing.ranks,
                    config.controller,
                )
            })
            .collect();
        let name = format!("{} x{}", timing.name, config.channels);
        DramSystem {
            mapping,
            channels,
            now: Cycle::ZERO,
            stats: MemoryStats::default(),
            name,
            scratch: Vec::new(),
            ready: CompletionQueue::new(),
            accept_seq: 0,
            config,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Theoretical peak bandwidth of the system.
    pub fn theoretical_bandwidth(&self) -> Bandwidth {
        self.config.theoretical_bandwidth()
    }

    /// Aggregated row-buffer statistics across channels, also available through
    /// [`MemoryBackend::stats`].
    pub fn row_stats(&self) -> mess_types::RowBufferStats {
        let mut total = mess_types::RowBufferStats::default();
        for ch in &self.channels {
            let s = ch.row_stats();
            total.hits += s.hits;
            total.empties += s.empties;
            total.misses += s.misses;
        }
        total
    }

    /// Advances every channel to `now` through the retained cycle-by-cycle reference
    /// scheduler instead of the event engine, then collects completions exactly like
    /// [`MemoryBackend::tick`].
    ///
    /// Validation only: the `event_equivalence` test drives this against the normal `tick`
    /// on random traffic and asserts bit-identical per-request completion cycles. It is far
    /// too slow for real runs.
    pub fn tick_reference(&mut self, now: Cycle) {
        if now > self.now {
            self.now = now;
        }
        let cycle = self.now.as_u64();
        for ch in &mut self.channels {
            ch.tick_reference(cycle);
        }
        self.collect();
    }

    fn collect(&mut self) {
        let now = self.now.as_u64();
        for ch in &mut self.channels {
            self.scratch.clear();
            ch.drain_completed(now, &mut self.scratch);
            for cc in &self.scratch {
                // Row-buffer outcome statistics are folded into the shared stats block so that
                // experiments (Fig. 7) read them through the common interface.
                match cc.outcome {
                    RowOutcome::Hit => self.stats.row_buffer.hits += 1,
                    RowOutcome::Empty => self.stats.row_buffer.empties += 1,
                    RowOutcome::Miss => self.stats.row_buffer.misses += 1,
                }
                // Recorded into the stats at drain time by the completion queue.
                self.ready.schedule_with_seq(cc.seq, cc.completion);
            }
        }
    }
}

impl MemoryBackend for DramSystem {
    fn tick(&mut self, now: Cycle) {
        if now > self.now {
            self.now = now;
        }
        let cycle = self.now.as_u64();
        for ch in &mut self.channels {
            ch.tick(cycle);
        }
        self.collect();
    }

    fn issue(&mut self, batch: &[Request]) -> IssueOutcome {
        for (i, request) in batch.iter().enumerate() {
            let coord = self.mapping.decode(request.addr);
            let ch = &mut self.channels[coord.channel as usize];
            if !ch.can_accept(request.kind) {
                self.stats.record_rejection();
                return IssueOutcome { accepted: i };
            }
            ch.enqueue(*request, coord, self.now.as_u64(), self.accept_seq);
            self.accept_seq += 1;
        }
        IssueOutcome::all(batch.len())
    }

    fn drain_completed(&mut self, out: &mut Vec<Completion>) -> usize {
        self.ready.drain_due(self.now, &mut self.stats, out)
    }

    fn next_event(&self) -> Option<Cycle> {
        // Every controller reports the exact cycle its next DRAM command will issue (or its
        // soonest scheduled data return), so the issuer can jump straight to the earliest
        // one — the detailed model no longer degrades cycle-skipping runs to lockstep.
        let now = self.now.as_u64();
        let mut next = self.ready.next_ready().map(|c| c.as_u64().max(now + 1));
        for ch in &self.channels {
            if let Some(e) = ch.next_event(now) {
                next = Some(next.map_or(e, |n| n.min(e)));
            }
        }
        next.map(Cycle::new)
    }

    fn pending(&self) -> usize {
        self.channels.iter().map(|c| c.pending()).sum::<usize>() + self.ready.len()
    }

    fn stats(&self) -> MemoryStats {
        self.stats
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mess_types::{AccessKind, Latency, CACHE_LINE_BYTES};

    fn system(preset: DramPreset, channels: u32) -> DramSystem {
        DramSystem::new(DramConfig::new(preset, channels, Frequency::from_ghz(2.0)))
    }

    /// Drives the DRAM system with `lanes` independent sequential streams until `total`
    /// requests complete; returns (bandwidth GB/s, average read latency ns).
    /// Drives the system with `lanes` sequential streams, each keeping up to `depth` requests
    /// in flight (the memory-level parallelism a core's MSHRs would provide).
    fn stream(
        sys: &mut DramSystem,
        lanes: usize,
        depth: usize,
        total: u64,
        write_every: Option<u64>,
    ) -> (f64, f64) {
        let freq = sys.config.cpu_frequency;
        let mut next_addr: Vec<u64> = (0..lanes).map(|l| (l as u64) << 30).collect();
        let mut inflight: Vec<usize> = vec![0; lanes];
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut now = 0u64;
        let mut out = Vec::new();
        while completed < total && now < 80_000_000 {
            sys.tick(Cycle::new(now));
            out.clear();
            sys.drain_completed(&mut out);
            for c in &out {
                completed += 1;
                let lane = c.core as usize;
                if lane < lanes {
                    inflight[lane] = inflight[lane].saturating_sub(1);
                }
            }
            for lane in 0..lanes {
                while inflight[lane] < depth {
                    let addr = next_addr[lane];
                    let kind = match write_every {
                        Some(k) if issued.is_multiple_of(k) => AccessKind::Write,
                        _ => AccessKind::Read,
                    };
                    let req = Request {
                        id: mess_types::RequestId(issued),
                        addr,
                        kind,
                        issue_cycle: Cycle::new(now),
                        core: lane as u32,
                    };
                    if sys.try_enqueue(req).is_ok() {
                        issued += 1;
                        inflight[lane] += 1;
                        next_addr[lane] += CACHE_LINE_BYTES;
                    } else {
                        break;
                    }
                }
            }
            now += 1;
        }
        let elapsed = Cycle::new(now).to_latency(freq);
        let bytes = completed * CACHE_LINE_BYTES;
        let bw = bytes as f64 / elapsed.as_ns();
        let lat = sys.stats().avg_read_latency(freq).as_ns();
        (bw, lat)
    }

    #[test]
    fn unloaded_latency_is_tens_of_nanoseconds() {
        let mut sys = system(DramPreset::Ddr4_2666, 6);
        let (_, lat) = stream(&mut sys, 1, 1, 200, None);
        assert!(lat > 30.0 && lat < 90.0, "unloaded DRAM latency {lat} ns");
    }

    #[test]
    fn more_parallelism_gives_more_bandwidth_and_latency() {
        let mut low = system(DramPreset::Ddr4_2666, 6);
        let (bw_low, lat_low) = stream(&mut low, 4, 1, 3_000, None);
        let mut high = system(DramPreset::Ddr4_2666, 6);
        let (bw_high, lat_high) = stream(&mut high, 96, 1, 20_000, None);
        assert!(
            bw_high > bw_low * 2.0,
            "bandwidth should scale: {bw_low} -> {bw_high}"
        );
        assert!(
            lat_high > lat_low,
            "latency should grow with load: {lat_low} -> {lat_high}"
        );
    }

    #[test]
    fn bandwidth_stays_below_theoretical_peak() {
        let mut sys = system(DramPreset::Ddr4_2666, 6);
        let theoretical = sys.theoretical_bandwidth().as_gbs();
        // 24 streams with 16 outstanding lines each: the regime of a many-core CPU whose MSHRs
        // provide memory-level parallelism within each sequential stream.
        let (bw, _) = stream(&mut sys, 24, 16, 40_000, None);
        assert!(
            bw < theoretical,
            "measured {bw} must stay below theoretical {theoretical}"
        );
        assert!(
            bw > theoretical * 0.5,
            "a saturating stream should exceed half the peak, got {bw}"
        );
    }

    #[test]
    fn write_traffic_reduces_read_bandwidth() {
        let mut reads = system(DramPreset::Ddr4_2666, 6);
        let (bw_reads, _) = stream(&mut reads, 24, 8, 20_000, None);
        let mut mixed = system(DramPreset::Ddr4_2666, 6);
        let (bw_mixed, _) = stream(&mut mixed, 24, 8, 20_000, Some(2));
        assert!(
            bw_mixed < bw_reads,
            "50/50 traffic ({bw_mixed}) must achieve less bandwidth than pure reads ({bw_reads})"
        );
    }

    #[test]
    fn row_buffer_hits_dominate_sequential_streams() {
        let mut sys = system(DramPreset::Ddr4_2666, 6);
        let _ = stream(&mut sys, 8, 1, 5_000, None);
        let rb = sys.row_stats();
        assert!(rb.total() >= 5_000);
        assert!(
            rb.hit_rate() > 0.6,
            "sequential streams should mostly hit, got {}",
            rb.hit_rate()
        );
        // The controllers count outcomes at command issue, the shared stats at completion
        // drain, so a handful of issued-but-not-yet-drained accesses may remain.
        assert!(rb.total() >= sys.stats().row_buffer.total());
        assert!(rb.total() - sys.stats().row_buffer.total() < 100);
    }

    #[test]
    fn hbm_outperforms_ddr4_in_bandwidth() {
        let mut ddr = system(DramPreset::Ddr4_2666, 6);
        let (bw_ddr, _) = stream(&mut ddr, 24, 8, 20_000, None);
        let mut hbm = system(DramPreset::Hbm2, 32);
        let (bw_hbm, _) = stream(&mut hbm, 64, 8, 20_000, None);
        assert!(
            bw_hbm > bw_ddr * 1.5,
            "HBM {bw_hbm} should beat DDR4 {bw_ddr}"
        );
    }

    #[test]
    fn optane_is_much_slower_than_dram() {
        let mut opt = system(DramPreset::OptaneLike, 2);
        let (_, lat) = stream(&mut opt, 1, 1, 100, None);
        // A sequential probe mostly row-hits, so the average pays CAS + overhead but not tRCD;
        // even so the media latency keeps it far above DRAM (~36 ns in the DDR4 test above).
        assert!(
            lat > 200.0,
            "Optane-like unloaded latency should exceed 200 ns, got {lat}"
        );
        let mut ddr = system(DramPreset::Ddr4_2666, 2);
        let (_, ddr_lat) = stream(&mut ddr, 1, 1, 100, None);
        assert!(
            lat > ddr_lat * 3.0,
            "Optane ({lat} ns) should be several times slower than DDR4 ({ddr_lat} ns)"
        );
    }

    #[test]
    fn rejects_when_queues_full_and_recovers() {
        let mut sys = system(DramPreset::Ddr4_2666, 1);
        // Flood channel 0 without ever ticking: queue must eventually reject.
        let mut rejected = false;
        for i in 0..1000u64 {
            let req = Request::read(i, i * 64, Cycle::ZERO, 0);
            if sys.try_enqueue(req).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected);
        assert!(sys.stats().rejected > 0);
        // After draining, the queue accepts again. The controller issues commands as simulated
        // time advances, so step the clock rather than jumping once.
        let mut out = Vec::new();
        for now in (0..200_000u64).step_by(10) {
            sys.tick(Cycle::new(now));
            sys.drain_completed(&mut out);
        }
        assert!(!out.is_empty());
        assert!(sys
            .try_enqueue(Request::read(9999, 0, Cycle::new(200_000), 0))
            .is_ok());
    }

    #[test]
    fn latency_unit_sanity() {
        // The average read latency reported in ns should match cycles / frequency.
        let mut sys = system(DramPreset::Ddr4_2666, 6);
        let _ = stream(&mut sys, 1, 1, 50, None);
        let s = sys.stats();
        let by_hand = s.read_latency_cycles as f64 / s.reads_completed as f64 / 2.0;
        assert!((s.avg_read_latency(Frequency::from_ghz(2.0)).as_ns() - by_hand).abs() < 1e-9);
        assert!(Latency::from_ns(by_hand).as_ns() > 0.0);
    }
}
