//! Memory-trace capture and trace-driven replay (paper §IV-D).
//!
//! To exclude the CPU simulator and its memory interface from the error analysis, the paper
//! replays Mess memory traces directly into DRAMsim3, Ramulator and Ramulator 2. The same
//! methodology is reproduced here: [`RecordingBackend`] wraps any memory model and captures
//! every accepted request with its issue cycle; [`replay`] feeds a captured [`Trace`]
//! straight into another memory model, preserving the inter-request gaps, and reports the
//! bandwidth–latency point observed at the memory controller.

use mess_types::{
    AccessKind, Bandwidth, Completion, Cycle, IssueOutcome, Latency, MemoryBackend, MemoryStats,
    Request, StatsWindow, CACHE_LINE_BYTES,
};
use serde::{Deserialize, Serialize};

/// One request of a captured memory trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// CPU cycle at which the request reached the memory interface.
    pub cycle: u64,
    /// Cache-line address.
    pub addr: u64,
    /// Read or write.
    pub kind: AccessKind,
}

/// A captured memory trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Records in issue order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The read/write composition of the trace.
    pub fn rw_ratio(&self) -> mess_types::RwRatio {
        let reads = self.records.iter().filter(|r| r.kind.is_read()).count() as u64;
        let writes = self.records.len() as u64 - reads;
        mess_types::RwRatio::from_counts(reads, writes)
    }
}

/// A pass-through memory backend that records every accepted request.
#[derive(Debug)]
pub struct RecordingBackend<B> {
    inner: B,
    trace: Trace,
}

impl<B: MemoryBackend> RecordingBackend<B> {
    /// Wraps `inner`, recording every request it accepts.
    pub fn new(inner: B) -> Self {
        RecordingBackend {
            inner,
            trace: Trace::default(),
        }
    }

    /// Consumes the wrapper and returns the inner backend and the captured trace.
    pub fn into_parts(self) -> (B, Trace) {
        (self.inner, self.trace)
    }

    /// The trace captured so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl<B: MemoryBackend> MemoryBackend for RecordingBackend<B> {
    fn tick(&mut self, now: Cycle) {
        self.inner.tick(now);
    }

    fn issue(&mut self, batch: &[Request]) -> IssueOutcome {
        let outcome = self.inner.issue(batch);
        for request in &batch[..outcome.accepted] {
            self.trace.records.push(TraceRecord {
                cycle: request.issue_cycle.as_u64(),
                addr: request.addr,
                kind: request.kind,
            });
        }
        outcome
    }

    fn drain_completed(&mut self, out: &mut Vec<Completion>) -> usize {
        self.inner.drain_completed(out)
    }

    fn next_event(&self) -> Option<Cycle> {
        self.inner.next_event()
    }

    fn pending(&self) -> usize {
        self.inner.pending()
    }

    fn stats(&self) -> MemoryStats {
        self.inner.stats()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// The bandwidth–latency point observed while replaying a trace into a memory model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Bandwidth over the replay (bytes moved / elapsed simulated time).
    pub bandwidth: Bandwidth,
    /// Average read round-trip latency reported by the memory model.
    pub latency: Latency,
    /// Number of requests replayed (requests rejected by a full queue are retried, not lost).
    pub requests: u64,
}

/// Replays `trace` into `backend`, preserving the captured inter-request spacing scaled by
/// `speed` (1.0 = as captured; 2.0 = twice the injection rate).
///
/// The replay loop speaks the v2 [`MemoryBackend`] protocol: every record due at the current
/// cycle is offered in one batched [`MemoryBackend::issue`] call, and between due times the
/// clock jumps to `min(next record due, backend.next_event())` instead of ticking every
/// cycle — the same cycle-skipping scheme as the CPU engine's main loop.
pub fn replay<B: MemoryBackend + ?Sized>(
    trace: &Trace,
    backend: &mut B,
    cpu_frequency: mess_types::Frequency,
    speed: f64,
) -> ReplayResult {
    let speed = if speed > 0.0 { speed } else { 1.0 };
    let window = StatsWindow::open(backend);
    let mut out = Vec::new();
    let mut batch: Vec<Request> = Vec::new();
    let mut now = 0u64;
    let mut next = 0usize;
    let mut id = 0u64;
    let base_cycle = trace.records.first().map(|r| r.cycle).unwrap_or(0);
    let due_at =
        |index: usize| -> u64 { ((trace.records[index].cycle - base_cycle) as f64 / speed) as u64 };
    let horizon = 400_000_000u64;
    while next < trace.records.len() && now < horizon {
        backend.tick(Cycle::new(now));
        out.clear();
        backend.drain_completed(&mut out);
        // Offer every record due by now in one batch; the backend takes a prefix.
        batch.clear();
        let mut probe = next;
        while probe < trace.records.len() && due_at(probe) <= now {
            let rec = trace.records[probe];
            batch.push(Request {
                id: mess_types::RequestId(id + (probe - next) as u64),
                addr: rec.addr,
                kind: rec.kind,
                issue_cycle: Cycle::new(now),
                core: 0,
            });
            probe += 1;
        }
        let accepted = backend.issue(&batch).accepted;
        next += accepted;
        id += accepted as u64;
        // Jump to the next time anything can happen. After a rejection, re-offering before
        // the backend's next event is pointless (nothing else changes its state), so the
        // event alone decides the wake-up — an overdue head record stays due and must not
        // drag the clock into a cycle-by-cycle crawl through the back-pressure.
        let stalled = accepted < batch.len();
        now = if stalled {
            backend
                .next_event()
                .map_or(now + 1, |c| c.as_u64())
                .max(now + 1)
        } else if next < trace.records.len() {
            due_at(next).max(now + 1)
        } else {
            backend
                .next_event()
                .map_or(now + 1, |c| c.as_u64())
                .max(now + 1)
        };
    }
    // Let the tail drain, jumping straight between completion events.
    let tail_deadline = now + 4_000_000;
    while backend.pending() > 0 && now < tail_deadline {
        now = backend
            .next_event()
            .map_or(now + 1, |c| c.as_u64())
            .max(now + 1)
            .min(tail_deadline);
        backend.tick(Cycle::new(now));
        out.clear();
        backend.drain_completed(&mut out);
    }
    let delta = window.measure(backend);
    let elapsed = Cycle::new(now.max(1)).to_latency(cpu_frequency);
    ReplayResult {
        bandwidth: Bandwidth::from_bytes_over(
            mess_types::Bytes::new(delta.total_completed() * CACHE_LINE_BYTES),
            elapsed,
        ),
        latency: delta.avg_read_latency(cpu_frequency),
        requests: id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mess_memmodels::FixedLatencyModel;
    use mess_types::Frequency;

    fn synthetic_trace(n: u64, gap: u64, write_every: Option<u64>) -> Trace {
        let records = (0..n)
            .map(|i| TraceRecord {
                cycle: 1_000 + i * gap,
                addr: i * CACHE_LINE_BYTES,
                kind: match write_every {
                    Some(k) if i % k == 0 => AccessKind::Write,
                    _ => AccessKind::Read,
                },
            })
            .collect();
        Trace { records }
    }

    #[test]
    fn recording_backend_captures_accepted_requests() {
        let freq = Frequency::from_ghz(2.0);
        let mut rec = RecordingBackend::new(FixedLatencyModel::new(Latency::from_ns(50.0), freq));
        for i in 0..10u64 {
            rec.tick(Cycle::new(i * 10));
            rec.try_enqueue(Request::read(i, i * 64, Cycle::new(i * 10), 0))
                .unwrap();
        }
        let (_, trace) = rec.into_parts();
        assert_eq!(trace.len(), 10);
        assert_eq!(trace.records[3].cycle, 30);
        assert_eq!(trace.rw_ratio().read_percent(), 100);
    }

    #[test]
    fn replay_preserves_request_count_and_mix() {
        let freq = Frequency::from_ghz(2.0);
        let trace = synthetic_trace(500, 20, Some(2));
        let mut backend = FixedLatencyModel::new(Latency::from_ns(50.0), freq);
        let result = replay(&trace, &mut backend, freq, 1.0);
        assert_eq!(result.requests, 500);
        let stats = backend.stats();
        assert_eq!(stats.total_completed(), 500);
        assert_eq!(stats.rw_ratio().read_percent(), 50);
    }

    #[test]
    fn replay_speed_scales_the_bandwidth() {
        let freq = Frequency::from_ghz(2.0);
        let trace = synthetic_trace(2_000, 40, None);
        let mut slow = FixedLatencyModel::new(Latency::from_ns(50.0), freq);
        let r1 = replay(&trace, &mut slow, freq, 1.0);
        let mut fast = FixedLatencyModel::new(Latency::from_ns(50.0), freq);
        let r4 = replay(&trace, &mut fast, freq, 4.0);
        assert!(
            r4.bandwidth.as_gbs() > r1.bandwidth.as_gbs() * 2.5,
            "4x replay speed should give roughly 4x bandwidth: {} vs {}",
            r1.bandwidth,
            r4.bandwidth
        );
    }

    #[test]
    fn replay_through_backpressure_jumps_to_backend_events() {
        // A dense trace into a queue-limited model: the replayer must ride out rejections by
        // jumping to the backend's next event, not by crawling cycle by cycle, and still
        // deliver every record.
        let freq = Frequency::from_ghz(2.0);
        let n = 2_000u64;
        let trace = synthetic_trace(n, 1, Some(3));
        let mut backend = mess_memmodels::SimpleDdrModel::new(
            mess_memmodels::SimpleDdrConfig::ddr4_2666_x6(),
            freq,
        );
        let result = replay(&trace, &mut backend, freq, 1.0);
        assert_eq!(
            result.requests, n,
            "every record must eventually be accepted"
        );
        assert_eq!(backend.stats().total_completed(), n);
        assert!(
            backend.stats().rejected > 0,
            "the model must actually have pushed back"
        );
        assert!(
            backend.stats().rejected < 4 * n,
            "rejection count must reflect back-pressure events, not a per-cycle retry crawl              (got {} rejections for {} requests)",
            backend.stats().rejected,
            n
        );
    }

    #[test]
    fn empty_trace_replays_to_nothing() {
        let freq = Frequency::from_ghz(2.0);
        let mut backend = FixedLatencyModel::new(Latency::from_ns(50.0), freq);
        let result = replay(&Trace::default(), &mut backend, freq, 1.0);
        assert_eq!(result.requests, 0);
        assert_eq!(result.bandwidth.as_gbs(), 0.0);
    }
}
