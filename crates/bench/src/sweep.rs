//! The Mess benchmark driver: sweeping traffic mix and intensity into a curve family.
//!
//! One measurement point runs the pointer-chase probe on core 0 and the traffic generator on
//! every remaining core, exactly like the real benchmark runs one latency-measuring thread
//! and `N − 1` bandwidth-generating threads. The memory bandwidth is read from the memory
//! model's counters (the simulator stand-in for uncore PMU counters) and the latency from the
//! probe's dependent loads. Sweeping the store mix selects the curve; sweeping the pause
//! (`nopCount`) moves along the curve from unloaded to fully saturated.
//!
//! # Parallel sweeps
//!
//! Measurement points are independent simulations, so [`characterize`] fans them out across
//! a [`mess_exec`] worker pool: each worker builds a *private* backend through the caller's
//! `Send + Sync` factory, runs a private [`Engine`], and the results are reassembled **in
//! sweep order** — the curve family and [`Characterization::to_csv`] output are
//! byte-identical at any worker count. Pass [`mess_exec::ExecConfig::sequential`] to
//! [`characterize_with`] to force the single-threaded path (it runs the same code inline).

use crate::chase::PointerChaseConfig;
use crate::traffic::TrafficConfig;
use mess_core::{Curve, CurveFamily, CurvePoint};
use mess_cpu::{CpuConfig, Engine, OpStream, StopCondition};
use mess_exec::ExecConfig;
use mess_types::{Bandwidth, Latency, MemoryBackend, MessError, RwRatio};
use serde::{Deserialize, Serialize};

/// One measured bandwidth–latency point together with the sweep coordinates that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPoint {
    /// Store share of the traffic-generator instruction mix that produced the point.
    pub store_mix: f64,
    /// Pause (dummy compute cycles per memory instruction) of the traffic generator.
    pub pause_cycles: u32,
    /// Memory read/write composition observed at the memory interface.
    pub ratio: RwRatio,
    /// Memory bandwidth observed at the memory interface.
    pub bandwidth: Bandwidth,
    /// Load-to-use latency measured by the pointer-chase probe.
    pub latency: Latency,
    /// `true` when the engine hit the point's cycle budget before the pointer-chase probe
    /// finished its configured loads. The bandwidth and latency are then measured over a
    /// truncated window and must not be treated as a converged measurement — raise
    /// [`SweepConfig::max_cycles_per_point`] (or lower `chase_loads`) until the flag clears.
    pub saturated_early: bool,
}

/// The result of a full characterization sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Characterization {
    /// The bandwidth–latency curve family (one curve per store mix).
    pub family: CurveFamily,
    /// Every raw measurement, in sweep order (the artifact's `results.csv`).
    pub points: Vec<MeasuredPoint>,
}

impl Characterization {
    /// Formats the raw measurements as CSV
    /// (`store_mix,pause_cycles,read_percent,bandwidth_gbs,latency_ns,saturated_early`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "store_mix,pause_cycles,read_percent,bandwidth_gbs,latency_ns,saturated_early\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:.2},{},{},{:.3},{:.2},{}\n",
                p.store_mix,
                p.pause_cycles,
                p.ratio.read_percent(),
                p.bandwidth.as_gbs(),
                p.latency.as_ns(),
                u8::from(p.saturated_early)
            ));
        }
        out
    }

    /// The points whose cycle budget truncated the probe (see
    /// [`MeasuredPoint::saturated_early`]); an empty result means the sweep converged.
    pub fn truncated_points(&self) -> Vec<&MeasuredPoint> {
        self.points.iter().filter(|p| p.saturated_early).collect()
    }
}

/// Configuration of a characterization sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Store shares of the traffic-generator instruction mix, one curve each.
    /// `0.0` is the 100 %-load kernel; `1.0` the 100 %-store kernel (which produces 50/50
    /// memory traffic under write-allocate).
    pub store_mixes: Vec<f64>,
    /// Pause levels (dummy compute cycles per memory instruction), highest first. More levels
    /// give more points per curve.
    pub pause_levels: Vec<u32>,
    /// Dependent loads executed by the pointer-chase probe per measurement point.
    pub chase_loads: u64,
    /// Simulated-cycle budget per measurement point.
    pub max_cycles_per_point: u64,
}

impl SweepConfig {
    /// A full-fidelity sweep: six store mixes (the 50–100 %-read family of the paper's
    /// simulator studies) and twelve intensity levels.
    pub fn full() -> Self {
        SweepConfig {
            store_mixes: vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
            pause_levels: vec![400, 200, 120, 80, 56, 40, 28, 20, 12, 8, 4, 0],
            chase_loads: 400,
            max_cycles_per_point: 3_000_000,
        }
    }

    /// A reduced sweep for unit tests and smoke runs.
    pub fn quick() -> Self {
        SweepConfig {
            store_mixes: vec![0.0, 1.0],
            pause_levels: vec![200, 40, 0],
            chase_loads: 120,
            max_cycles_per_point: 600_000,
        }
    }

    /// The smallest meaningful sweep: two mixes, three intensities, a short probe. Used by
    /// the determinism regression tests, which characterize the same platform at several
    /// worker counts and require bit-identical output quickly.
    pub fn reduced() -> Self {
        SweepConfig {
            store_mixes: vec![0.0, 1.0],
            pause_levels: vec![120, 20, 0],
            chase_loads: 80,
            max_cycles_per_point: 400_000,
        }
    }

    /// Validates the sweep parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MessError::InvalidConfig`] when a list is empty, a store mix is outside
    /// `[0, 1]` or the probe has no loads.
    pub fn validate(&self) -> Result<(), MessError> {
        if self.store_mixes.is_empty() || self.pause_levels.is_empty() {
            return Err(MessError::InvalidConfig(
                "sweep lists must not be empty".into(),
            ));
        }
        if self.store_mixes.iter().any(|m| !(0.0..=1.0).contains(m)) {
            return Err(MessError::InvalidConfig(
                "store mixes must lie in [0, 1]".into(),
            ));
        }
        if self.chase_loads == 0 {
            return Err(MessError::InvalidConfig(
                "the probe needs at least one load".into(),
            ));
        }
        Ok(())
    }
}

/// A named base sweep that a [`SweepSpec`] starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepPreset {
    /// [`SweepConfig::quick`].
    Quick,
    /// [`SweepConfig::full`].
    Full,
    /// [`SweepConfig::reduced`].
    Reduced,
}

impl SweepPreset {
    /// The preset's base configuration.
    pub fn config(self) -> SweepConfig {
        match self {
            SweepPreset::Quick => SweepConfig::quick(),
            SweepPreset::Full => SweepConfig::full(),
            SweepPreset::Reduced => SweepConfig::reduced(),
        }
    }
}

/// A declarative, serializable sweep description: a named preset plus optional overrides.
///
/// This is the spec-driven face of [`SweepConfig`]: scenario files (and the `mess-scenario`
/// builtin experiments) describe their sweeps as data — `{"preset": "Full",
/// "chase_loads": 300}` — and [`SweepSpec::config`] resolves them into the concrete sweep
/// [`characterize_spec`] runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// The base configuration the overrides below are applied to.
    pub preset: SweepPreset,
    /// Overrides [`SweepConfig::store_mixes`] when set.
    pub store_mixes: Option<Vec<f64>>,
    /// Overrides [`SweepConfig::pause_levels`] when set.
    pub pause_levels: Option<Vec<u32>>,
    /// Overrides [`SweepConfig::chase_loads`] when set.
    pub chase_loads: Option<u64>,
    /// Overrides [`SweepConfig::max_cycles_per_point`] when set.
    pub max_cycles_per_point: Option<u64>,
}

impl SweepSpec {
    /// A spec running `preset` unmodified.
    pub fn preset(preset: SweepPreset) -> Self {
        SweepSpec {
            preset,
            store_mixes: None,
            pause_levels: None,
            chase_loads: None,
            max_cycles_per_point: None,
        }
    }

    /// Resolves the spec into a concrete [`SweepConfig`].
    pub fn config(&self) -> SweepConfig {
        let mut config = self.preset.config();
        if let Some(mixes) = &self.store_mixes {
            config.store_mixes = mixes.clone();
        }
        if let Some(pauses) = &self.pause_levels {
            config.pause_levels = pauses.clone();
        }
        if let Some(loads) = self.chase_loads {
            config.chase_loads = loads;
        }
        if let Some(cycles) = self.max_cycles_per_point {
            config.max_cycles_per_point = cycles;
        }
        config
    }

    /// Validates the resolved configuration (see [`SweepConfig::validate`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SweepConfig::validate`].
    pub fn validate(&self) -> Result<(), MessError> {
        self.config().validate()
    }
}

/// The spec-driven entry point of the characterization sweep: resolves `spec` and runs
/// [`characterize_with`].
///
/// # Errors
///
/// Propagates [`characterize_with`]'s validation errors.
pub fn characterize_spec<B, F>(
    name: impl Into<String>,
    cpu: &CpuConfig,
    factory: F,
    spec: &SweepSpec,
    exec: &ExecConfig,
) -> Result<Characterization, MessError>
where
    B: MemoryBackend,
    F: Fn() -> B + Send + Sync,
{
    characterize_with(name, cpu, factory, &spec.config(), exec)
}

/// Runs one measurement point: pointer-chase on core 0, traffic lanes on the other cores.
///
/// The point owns its backend for the duration of the run (the parallel sweep gives every
/// worker a private instance); the bandwidth is computed from the statistics delta of this
/// run only, and the backend's internal clock must not be ahead of cycle zero.
pub fn measure_point<B: MemoryBackend + ?Sized>(
    cpu: &CpuConfig,
    backend: &mut B,
    store_mix: f64,
    pause_cycles: u32,
    chase_loads: u64,
    max_cycles: u64,
) -> MeasuredPoint {
    let llc_bytes = cpu.llc.capacity_bytes.max(1 << 20);
    let chase = PointerChaseConfig::sized_against_llc(llc_bytes, chase_loads);
    let traffic = TrafficConfig::new(store_mix, pause_cycles, llc_bytes);

    let mut streams: Vec<Box<dyn OpStream>> = Vec::with_capacity(cpu.cores as usize);
    streams.push(Box::new(chase.stream()));
    streams.extend(traffic.lanes(cpu.cores.saturating_sub(1)));

    let mut engine = Engine::from_boxed(*cpu, streams);
    let report = engine.run(backend, StopCondition::CoreDone(0), max_cycles);

    let latency = report
        .dependent_load_latency(0)
        .unwrap_or(cpu.on_chip_latency);
    MeasuredPoint {
        store_mix,
        pause_cycles,
        ratio: report.rw_ratio(),
        bandwidth: report.bandwidth,
        latency,
        saturated_early: report.hit_cycle_limit,
    }
}

/// Runs a full characterization sweep with the process-default worker count.
///
/// Every (store-mix, pause) point is an independent simulation: a worker builds a private
/// backend via `factory`, runs a private [`Engine`] on it, and the points are reassembled in
/// sweep order. See [`characterize_with`] for an explicit [`ExecConfig`].
///
/// # Errors
///
/// Returns an error if the sweep configuration is invalid or the measured points cannot form
/// a curve family (which cannot happen for a valid sweep).
pub fn characterize<B, F>(
    name: impl Into<String>,
    cpu: &CpuConfig,
    factory: F,
    sweep: &SweepConfig,
) -> Result<Characterization, MessError>
where
    B: MemoryBackend,
    F: Fn() -> B + Send + Sync,
{
    characterize_with(name, cpu, factory, sweep, &ExecConfig::default())
}

/// Runs a full characterization sweep of the memory system built by `factory` under the CPU
/// described by `cpu`, on `exec.resolved_threads()` workers.
///
/// The output is deterministic in the worker count: points are computed by pure per-point
/// simulations (fresh backend, fresh engine, fixed seeds) and collected in sweep order, so
/// the [`Characterization`] — family, points and CSV — is byte-identical whether the sweep
/// ran on one thread or many.
///
/// # Errors
///
/// Returns an error if the sweep configuration is invalid or the measured points cannot form
/// a curve family (which cannot happen for a valid sweep).
pub fn characterize_with<B, F>(
    name: impl Into<String>,
    cpu: &CpuConfig,
    factory: F,
    sweep: &SweepConfig,
    exec: &ExecConfig,
) -> Result<Characterization, MessError>
where
    B: MemoryBackend,
    F: Fn() -> B + Send + Sync,
{
    sweep.validate()?;
    let grid: Vec<(f64, u32)> = sweep
        .store_mixes
        .iter()
        .flat_map(|&mix| sweep.pause_levels.iter().map(move |&pause| (mix, pause)))
        .collect();
    let points = mess_exec::par_map_with(exec, grid, |_, (store_mix, pause)| {
        let mut backend = factory();
        measure_point(
            cpu,
            &mut backend,
            store_mix,
            pause,
            sweep.chase_loads,
            sweep.max_cycles_per_point,
        )
    });

    let mut curves: Vec<Curve> = Vec::new();
    for mix_points in points.chunks(sweep.pause_levels.len()) {
        let curve_points: Vec<CurvePoint> = mix_points
            .iter()
            .map(|p| CurvePoint::new(p.bandwidth, p.latency))
            .collect();
        let mean_ratio = mix_points
            .iter()
            .map(|p| p.ratio.read_fraction())
            .sum::<f64>()
            / mix_points.len() as f64;
        let mut fraction = mean_ratio.clamp(0.0, 1.0);
        // Two sweeps can measure the same mean composition (e.g. both fully read-dominated);
        // nudge the later one so every curve in the family keeps a distinct ratio key.
        while curves
            .iter()
            .any(|c| (c.ratio().read_fraction() - fraction).abs() < 1e-9)
        {
            fraction = (fraction - 1e-4).max(0.0);
        }
        let ratio = RwRatio::from_read_fraction(fraction).expect("fraction stays in [0, 1]");
        curves.push(Curve::new(ratio, curve_points)?);
    }
    let family = CurveFamily::new(name, curves)?;
    Ok(Characterization { family, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mess_cpu::CacheConfig;
    use mess_memmodels::{FixedLatencyModel, Md1QueueModel};
    use mess_types::Frequency;

    fn small_cpu(cores: u32) -> CpuConfig {
        CpuConfig {
            llc: CacheConfig::new(512 * 1024, 8),
            ..CpuConfig::server_class(cores, Frequency::from_ghz(2.0))
        }
    }

    #[test]
    fn sweep_config_validation_rejects_bad_input() {
        let mut bad = SweepConfig::quick();
        bad.store_mixes.clear();
        assert!(bad.validate().is_err());
        let mut bad = SweepConfig::quick();
        bad.store_mixes = vec![1.5];
        assert!(bad.validate().is_err());
        let mut bad = SweepConfig::quick();
        bad.chase_loads = 0;
        assert!(bad.validate().is_err());
        assert!(SweepConfig::full().validate().is_ok());
    }

    #[test]
    fn fixed_latency_backend_yields_flat_curves() {
        let cpu = small_cpu(4);
        let backend = || FixedLatencyModel::new(Latency::from_ns(60.0), cpu.frequency);
        let c = characterize("fixed", &cpu, backend, &SweepConfig::quick()).unwrap();
        assert_eq!(c.family.len(), 2);
        for curve in c.family.curves() {
            let spread = curve.max_latency().as_ns() - curve.unloaded_latency().as_ns();
            assert!(
                spread < 30.0,
                "fixed-latency curves must stay flat, spread {spread} ns"
            );
        }
        // The load-to-use latency must include the memory and on-chip components.
        assert!(c.family.unloaded_latency().as_ns() > 60.0);
    }

    #[test]
    fn queueing_backend_shows_rising_latency_and_lower_pause_gives_more_bandwidth() {
        let cpu = small_cpu(6);
        let backend = || {
            Md1QueueModel::new(
                Latency::from_ns(60.0),
                Bandwidth::from_gbs(20.0),
                cpu.frequency,
            )
        };
        let c = characterize("md1", &cpu, backend, &SweepConfig::quick()).unwrap();
        for mix_points in c.points.chunks(SweepConfig::quick().pause_levels.len()) {
            let first = mix_points.first().unwrap();
            let last = mix_points.last().unwrap();
            assert!(
                last.bandwidth.as_gbs() > first.bandwidth.as_gbs(),
                "removing the pause must increase bandwidth: {first:?} vs {last:?}"
            );
        }
        let curve = c.family.closest_curve(RwRatio::ALL_READS);
        assert!(curve.max_latency() > curve.unloaded_latency());
    }

    #[test]
    fn store_mix_shifts_the_measured_ratio() {
        // A small LLC so the store traffic reaches its dirty-eviction steady state quickly.
        let cpu = CpuConfig {
            llc: CacheConfig::new(64 * 1024, 8),
            ..CpuConfig::server_class(4, Frequency::from_ghz(2.0))
        };
        let backend = || FixedLatencyModel::new(Latency::from_ns(60.0), cpu.frequency);
        let c = characterize("ratios", &cpu, backend, &SweepConfig::quick()).unwrap();
        // The all-load sweep stays read-only; the all-store sweep approaches 50/50 at full
        // intensity because every store turns into a fill read plus an eventual writeback.
        assert!(c
            .points
            .iter()
            .any(|p| p.store_mix == 0.0 && p.ratio.read_percent() >= 95));
        assert!(c
            .points
            .iter()
            .any(|p| p.store_mix == 1.0 && p.ratio.read_percent() <= 75));
    }

    #[test]
    fn csv_has_one_row_per_point_plus_header() {
        let cpu = small_cpu(2);
        let backend = || FixedLatencyModel::new(Latency::from_ns(50.0), cpu.frequency);
        let sweep = SweepConfig::quick();
        let c = characterize("csv", &cpu, backend, &sweep).unwrap();
        let csv = c.to_csv();
        let rows: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(
            rows.len(),
            1 + sweep.store_mixes.len() * sweep.pause_levels.len()
        );
        assert!(rows[0].starts_with("store_mix"));
        assert!(rows[0].ends_with("saturated_early"));
        // A converged sweep flags nothing.
        assert!(c.truncated_points().is_empty());
        assert!(rows[1..].iter().all(|row| row.ends_with(",0")));
    }

    #[test]
    fn starved_cycle_budget_flags_points_as_saturated_early() {
        let cpu = small_cpu(4);
        let backend = || FixedLatencyModel::new(Latency::from_ns(60.0), cpu.frequency);
        // A 400-load probe cannot finish inside 2000 cycles against a 60 ns memory: every
        // point must be flagged instead of being recorded as a valid measurement.
        let sweep = SweepConfig {
            max_cycles_per_point: 2_000,
            chase_loads: 400,
            ..SweepConfig::quick()
        };
        let c = characterize("starved", &cpu, backend, &sweep).unwrap();
        assert_eq!(c.truncated_points().len(), c.points.len());
        assert!(c.points.iter().all(|p| p.saturated_early));
        assert!(c.to_csv().trim().lines().skip(1).all(|r| r.ends_with(",1")));
        // And a generous budget clears the flag for the same probe.
        let relaxed = characterize("relaxed", &cpu, backend, &SweepConfig::quick()).unwrap();
        assert!(relaxed.truncated_points().is_empty());
    }

    #[test]
    fn sweep_spec_resolves_presets_and_overrides() {
        assert_eq!(
            SweepSpec::preset(SweepPreset::Full).config(),
            SweepConfig::full()
        );
        let spec = SweepSpec {
            preset: SweepPreset::Quick,
            store_mixes: Some(vec![0.0, 1.0]),
            pause_levels: Some(vec![120, 20, 0]),
            chase_loads: Some(80),
            max_cycles_per_point: None,
        };
        let config = spec.config();
        assert_eq!(config.store_mixes, vec![0.0, 1.0]);
        assert_eq!(config.pause_levels, vec![120, 20, 0]);
        assert_eq!(config.chase_loads, 80);
        assert_eq!(
            config.max_cycles_per_point,
            SweepConfig::quick().max_cycles_per_point
        );
        assert!(spec.validate().is_ok());
        let mut bad = spec.clone();
        bad.store_mixes = Some(vec![2.0]);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn characterize_spec_matches_the_explicit_config_path() {
        let cpu = small_cpu(2);
        let backend = || FixedLatencyModel::new(Latency::from_ns(50.0), cpu.frequency);
        let spec = SweepSpec::preset(SweepPreset::Reduced);
        let via_spec = characterize_spec(
            "spec",
            &cpu,
            backend,
            &spec,
            &mess_exec::ExecConfig::sequential(),
        )
        .unwrap();
        let via_config = characterize_with(
            "spec",
            &cpu,
            backend,
            &SweepConfig::reduced(),
            &mess_exec::ExecConfig::sequential(),
        )
        .unwrap();
        assert_eq!(via_spec.points, via_config.points);
        assert_eq!(via_spec.to_csv(), via_config.to_csv());
    }

    #[test]
    fn explicit_exec_config_matches_the_default_path() {
        let cpu = small_cpu(2);
        let backend = || FixedLatencyModel::new(Latency::from_ns(50.0), cpu.frequency);
        let sweep = SweepConfig::reduced();
        let sequential = characterize_with(
            "seq",
            &cpu,
            backend,
            &sweep,
            &mess_exec::ExecConfig::sequential(),
        )
        .unwrap();
        let parallel = characterize_with(
            "seq",
            &cpu,
            backend,
            &sweep,
            &mess_exec::ExecConfig::with_threads(4),
        )
        .unwrap();
        assert_eq!(sequential.points, parallel.points);
        assert_eq!(sequential.to_csv(), parallel.to_csv());
    }
}
