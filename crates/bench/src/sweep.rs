//! The Mess benchmark driver: sweeping traffic mix and intensity into a curve family.
//!
//! One measurement point runs the pointer-chase probe on core 0 and the traffic generator on
//! every remaining core, exactly like the real benchmark runs one latency-measuring thread
//! and `N − 1` bandwidth-generating threads. The memory bandwidth is read from the memory
//! model's counters (the simulator stand-in for uncore PMU counters) and the latency from the
//! probe's dependent loads. Sweeping the store mix selects the curve; sweeping the pause
//! (`nopCount`) moves along the curve from unloaded to fully saturated.

use crate::chase::PointerChaseConfig;
use crate::traffic::TrafficConfig;
use mess_core::{Curve, CurveFamily, CurvePoint};
use mess_cpu::{CpuConfig, Engine, OpStream, StopCondition};
use mess_types::{Bandwidth, Latency, MemoryBackend, MessError, RwRatio};
use serde::{Deserialize, Serialize};

/// One measured bandwidth–latency point together with the sweep coordinates that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPoint {
    /// Store share of the traffic-generator instruction mix that produced the point.
    pub store_mix: f64,
    /// Pause (dummy compute cycles per memory instruction) of the traffic generator.
    pub pause_cycles: u32,
    /// Memory read/write composition observed at the memory interface.
    pub ratio: RwRatio,
    /// Memory bandwidth observed at the memory interface.
    pub bandwidth: Bandwidth,
    /// Load-to-use latency measured by the pointer-chase probe.
    pub latency: Latency,
}

/// The result of a full characterization sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Characterization {
    /// The bandwidth–latency curve family (one curve per store mix).
    pub family: CurveFamily,
    /// Every raw measurement, in sweep order (the artifact's `results.csv`).
    pub points: Vec<MeasuredPoint>,
}

impl Characterization {
    /// Formats the raw measurements as CSV (`store_mix,pause,read_pct,bandwidth_gbs,latency_ns`).
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("store_mix,pause_cycles,read_percent,bandwidth_gbs,latency_ns\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:.2},{},{},{:.3},{:.2}\n",
                p.store_mix,
                p.pause_cycles,
                p.ratio.read_percent(),
                p.bandwidth.as_gbs(),
                p.latency.as_ns()
            ));
        }
        out
    }
}

/// Configuration of a characterization sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// Store shares of the traffic-generator instruction mix, one curve each.
    /// `0.0` is the 100 %-load kernel; `1.0` the 100 %-store kernel (which produces 50/50
    /// memory traffic under write-allocate).
    pub store_mixes: Vec<f64>,
    /// Pause levels (dummy compute cycles per memory instruction), highest first. More levels
    /// give more points per curve.
    pub pause_levels: Vec<u32>,
    /// Dependent loads executed by the pointer-chase probe per measurement point.
    pub chase_loads: u64,
    /// Simulated-cycle budget per measurement point.
    pub max_cycles_per_point: u64,
}

impl SweepConfig {
    /// A full-fidelity sweep: six store mixes (the 50–100 %-read family of the paper's
    /// simulator studies) and twelve intensity levels.
    pub fn full() -> Self {
        SweepConfig {
            store_mixes: vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
            pause_levels: vec![400, 200, 120, 80, 56, 40, 28, 20, 12, 8, 4, 0],
            chase_loads: 400,
            max_cycles_per_point: 3_000_000,
        }
    }

    /// A reduced sweep for unit tests and smoke runs.
    pub fn quick() -> Self {
        SweepConfig {
            store_mixes: vec![0.0, 1.0],
            pause_levels: vec![200, 40, 0],
            chase_loads: 120,
            max_cycles_per_point: 600_000,
        }
    }

    /// Validates the sweep parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MessError::InvalidConfig`] when a list is empty, a store mix is outside
    /// `[0, 1]` or the probe has no loads.
    pub fn validate(&self) -> Result<(), MessError> {
        if self.store_mixes.is_empty() || self.pause_levels.is_empty() {
            return Err(MessError::InvalidConfig(
                "sweep lists must not be empty".into(),
            ));
        }
        if self.store_mixes.iter().any(|m| !(0.0..=1.0).contains(m)) {
            return Err(MessError::InvalidConfig(
                "store mixes must lie in [0, 1]".into(),
            ));
        }
        if self.chase_loads == 0 {
            return Err(MessError::InvalidConfig(
                "the probe needs at least one load".into(),
            ));
        }
        Ok(())
    }
}

/// Shifts a shared memory model's clock so that successive engine runs (which each restart
/// their cycle count at zero) keep issuing requests in the model's future instead of its past.
struct OffsetBackend<'a, B: ?Sized> {
    inner: &'a mut B,
    offset: u64,
    /// Reusable scratch for clock-shifted batches (the issue path is hot).
    scratch: Vec<mess_types::Request>,
}

impl<B: MemoryBackend + ?Sized> MemoryBackend for OffsetBackend<'_, B> {
    fn tick(&mut self, now: mess_types::Cycle) {
        self.inner
            .tick(mess_types::Cycle::new(now.as_u64() + self.offset));
    }

    fn issue(&mut self, batch: &[mess_types::Request]) -> mess_types::IssueOutcome {
        // Shift every request into the inner model's clock domain, reusing one buffer.
        self.scratch.clear();
        self.scratch
            .extend(batch.iter().map(|request| mess_types::Request {
                issue_cycle: mess_types::Cycle::new(request.issue_cycle.as_u64() + self.offset),
                ..*request
            }));
        self.inner.issue(&self.scratch)
    }

    fn drain_completed(&mut self, out: &mut Vec<mess_types::Completion>) -> usize {
        let start = out.len();
        let drained = self.inner.drain_completed(out);
        for c in &mut out[start..] {
            c.issue_cycle =
                mess_types::Cycle::new(c.issue_cycle.as_u64().saturating_sub(self.offset));
            c.complete_cycle =
                mess_types::Cycle::new(c.complete_cycle.as_u64().saturating_sub(self.offset));
        }
        drained
    }

    fn next_event(&self) -> Option<mess_types::Cycle> {
        self.inner
            .next_event()
            .map(|c| mess_types::Cycle::new(c.as_u64().saturating_sub(self.offset)))
    }

    fn pending(&self) -> usize {
        self.inner.pending()
    }

    fn stats(&self) -> mess_types::MemoryStats {
        self.inner.stats()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Runs one measurement point: pointer-chase on core 0, traffic lanes on the other cores.
///
/// The backend keeps its state between points (like the real machine does between runs); the
/// bandwidth is computed from the statistics delta of this run only. The backend's internal
/// clock must not be ahead of cycle zero — [`characterize`] takes care of this when reusing
/// one model across many points.
pub fn measure_point<B: MemoryBackend + ?Sized>(
    cpu: &CpuConfig,
    backend: &mut B,
    store_mix: f64,
    pause_cycles: u32,
    chase_loads: u64,
    max_cycles: u64,
) -> MeasuredPoint {
    let llc_bytes = cpu.llc.capacity_bytes.max(1 << 20);
    let chase = PointerChaseConfig::sized_against_llc(llc_bytes, chase_loads);
    let traffic = TrafficConfig::new(store_mix, pause_cycles, llc_bytes);

    let mut streams: Vec<Box<dyn OpStream>> = Vec::with_capacity(cpu.cores as usize);
    streams.push(Box::new(chase.stream()));
    streams.extend(traffic.lanes(cpu.cores.saturating_sub(1)));

    let mut engine = Engine::from_boxed(*cpu, streams);
    let report = engine.run(backend, StopCondition::CoreDone(0), max_cycles);

    let latency = report
        .dependent_load_latency(0)
        .unwrap_or(cpu.on_chip_latency);
    MeasuredPoint {
        store_mix,
        pause_cycles,
        ratio: report.rw_ratio(),
        bandwidth: report.bandwidth,
        latency,
    }
}

/// Runs a full characterization sweep of `backend` under the CPU described by `cpu`.
///
/// # Errors
///
/// Returns an error if the sweep configuration is invalid or the measured points cannot form
/// a curve family (which cannot happen for a valid sweep).
pub fn characterize<B: MemoryBackend + ?Sized>(
    name: impl Into<String>,
    cpu: &CpuConfig,
    backend: &mut B,
    sweep: &SweepConfig,
) -> Result<Characterization, MessError> {
    sweep.validate()?;
    let mut points = Vec::new();
    let mut curves: Vec<Curve> = Vec::new();
    let mut clock_offset = 0u64;
    for &store_mix in &sweep.store_mixes {
        let mut curve_points = Vec::new();
        let mut ratios = Vec::new();
        for &pause in &sweep.pause_levels {
            let mut shifted = OffsetBackend {
                inner: &mut *backend,
                offset: clock_offset,
                scratch: Vec::new(),
            };
            let p = measure_point(
                cpu,
                &mut shifted,
                store_mix,
                pause,
                sweep.chase_loads,
                sweep.max_cycles_per_point,
            );
            // The next point restarts its engine clock at zero; advance the shared model's
            // clock past anything this point can have scheduled.
            clock_offset += sweep.max_cycles_per_point + 1_000_000;
            curve_points.push(CurvePoint::new(p.bandwidth, p.latency));
            ratios.push(p.ratio.read_fraction());
            points.push(p);
        }
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let mut fraction = mean_ratio.clamp(0.0, 1.0);
        // Two sweeps can measure the same mean composition (e.g. both fully read-dominated);
        // nudge the later one so every curve in the family keeps a distinct ratio key.
        while curves
            .iter()
            .any(|c| (c.ratio().read_fraction() - fraction).abs() < 1e-9)
        {
            fraction = (fraction - 1e-4).max(0.0);
        }
        let ratio = RwRatio::from_read_fraction(fraction).expect("fraction stays in [0, 1]");
        curves.push(Curve::new(ratio, curve_points)?);
    }
    let family = CurveFamily::new(name, curves)?;
    Ok(Characterization { family, points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mess_cpu::CacheConfig;
    use mess_memmodels::{FixedLatencyModel, Md1QueueModel};
    use mess_types::Frequency;

    fn small_cpu(cores: u32) -> CpuConfig {
        CpuConfig {
            llc: CacheConfig::new(512 * 1024, 8),
            ..CpuConfig::server_class(cores, Frequency::from_ghz(2.0))
        }
    }

    #[test]
    fn sweep_config_validation_rejects_bad_input() {
        let mut bad = SweepConfig::quick();
        bad.store_mixes.clear();
        assert!(bad.validate().is_err());
        let mut bad = SweepConfig::quick();
        bad.store_mixes = vec![1.5];
        assert!(bad.validate().is_err());
        let mut bad = SweepConfig::quick();
        bad.chase_loads = 0;
        assert!(bad.validate().is_err());
        assert!(SweepConfig::full().validate().is_ok());
    }

    #[test]
    fn fixed_latency_backend_yields_flat_curves() {
        let cpu = small_cpu(4);
        let mut backend = FixedLatencyModel::new(Latency::from_ns(60.0), cpu.frequency);
        let c = characterize("fixed", &cpu, &mut backend, &SweepConfig::quick()).unwrap();
        assert_eq!(c.family.len(), 2);
        for curve in c.family.curves() {
            let spread = curve.max_latency().as_ns() - curve.unloaded_latency().as_ns();
            assert!(
                spread < 30.0,
                "fixed-latency curves must stay flat, spread {spread} ns"
            );
        }
        // The load-to-use latency must include the memory and on-chip components.
        assert!(c.family.unloaded_latency().as_ns() > 60.0);
    }

    #[test]
    fn queueing_backend_shows_rising_latency_and_lower_pause_gives_more_bandwidth() {
        let cpu = small_cpu(6);
        let mut backend = Md1QueueModel::new(
            Latency::from_ns(60.0),
            Bandwidth::from_gbs(20.0),
            cpu.frequency,
        );
        let c = characterize("md1", &cpu, &mut backend, &SweepConfig::quick()).unwrap();
        for mix_points in c.points.chunks(SweepConfig::quick().pause_levels.len()) {
            let first = mix_points.first().unwrap();
            let last = mix_points.last().unwrap();
            assert!(
                last.bandwidth.as_gbs() > first.bandwidth.as_gbs(),
                "removing the pause must increase bandwidth: {first:?} vs {last:?}"
            );
        }
        let curve = c.family.closest_curve(RwRatio::ALL_READS);
        assert!(curve.max_latency() > curve.unloaded_latency());
    }

    #[test]
    fn store_mix_shifts_the_measured_ratio() {
        // A small LLC so the store traffic reaches its dirty-eviction steady state quickly.
        let cpu = CpuConfig {
            llc: CacheConfig::new(64 * 1024, 8),
            ..CpuConfig::server_class(4, Frequency::from_ghz(2.0))
        };
        let mut backend = FixedLatencyModel::new(Latency::from_ns(60.0), cpu.frequency);
        let c = characterize("ratios", &cpu, &mut backend, &SweepConfig::quick()).unwrap();
        // The all-load sweep stays read-only; the all-store sweep approaches 50/50 at full
        // intensity because every store turns into a fill read plus an eventual writeback.
        assert!(c
            .points
            .iter()
            .any(|p| p.store_mix == 0.0 && p.ratio.read_percent() >= 95));
        assert!(c
            .points
            .iter()
            .any(|p| p.store_mix == 1.0 && p.ratio.read_percent() <= 75));
    }

    #[test]
    fn csv_has_one_row_per_point_plus_header() {
        let cpu = small_cpu(2);
        let mut backend = FixedLatencyModel::new(Latency::from_ns(50.0), cpu.frequency);
        let sweep = SweepConfig::quick();
        let c = characterize("csv", &cpu, &mut backend, &sweep).unwrap();
        let csv = c.to_csv();
        let rows: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(
            rows.len(),
            1 + sweep.store_mixes.len() * sweep.pause_levels.len()
        );
        assert!(rows[0].starts_with("store_mix"));
    }
}
