//! The Mess memory traffic generator (paper Appendix A.2).
//!
//! Every traffic lane (one per CPU core) traverses two private arrays, one with loads and one
//! with stores, interleaving them according to the requested instruction mix. The issue rate
//! — and therefore the generated bandwidth — is throttled by a configurable block of dummy
//! compute cycles between memory operations, the op-stream equivalent of the benchmark's
//! `nop` loop (`nopCount`).

use mess_cpu::{Op, OpBlock, OpStream, PackedOp};
use mess_types::CACHE_LINE_BYTES;
use serde::{Deserialize, Serialize};

/// Base address of the traffic generator's arrays; each lane owns a disjoint block above this,
/// with its load array in the lower half of the block and its store array in the upper half.
const TRAFFIC_BASE: u64 = 0x80_0000_0000;
/// Size of one lane's address block.
const LANE_BLOCK_BYTES: u64 = 1 << 33;

/// Configuration of one traffic-generator lane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Fraction of memory instructions that are stores, in `[0, 1]`.
    ///
    /// Note that this is the *instruction* mix; with a write-allocate cache a store mix of
    /// `s` produces a memory read/write ratio of `1 : s / (1 + s)` (paper §II-A).
    pub store_mix: f64,
    /// Dummy compute cycles inserted after every memory instruction (the `nopCount` knob).
    /// Zero generates the maximum pressure.
    pub pause_cycles: u32,
    /// Size of each lane's two arrays in bytes; large enough that the lane never hits in the
    /// LLC once warmed up.
    pub array_bytes: u64,
}

impl TrafficConfig {
    /// A lane configuration with per-lane arrays of four times the LLC.
    pub fn new(store_mix: f64, pause_cycles: u32, llc_bytes: u64) -> Self {
        TrafficConfig {
            store_mix: store_mix.clamp(0.0, 1.0),
            pause_cycles,
            array_bytes: llc_bytes * 4,
        }
    }

    /// The op streams of `lanes` traffic-generator lanes (one per background core).
    pub fn lanes(&self, lanes: u32) -> Vec<Box<dyn OpStream>> {
        (0..lanes)
            .map(|lane| Box::new(TrafficStream::new(*self, lane)) as Box<dyn OpStream>)
            .collect()
    }
}

/// An infinite op stream generating the configured load/store mix at the configured rate.
#[derive(Debug, Clone)]
pub struct TrafficStream {
    config: TrafficConfig,
    lane: u32,
    load_line: u64,
    store_line: u64,
    lines: u64,
    /// Fractional accumulator deciding when the next memory instruction is a store.
    store_accum: f64,
    /// `true` when the next op must be the pacing compute block.
    pause_pending: bool,
    label: String,
}

impl TrafficStream {
    /// Creates the stream for `lane`.
    pub fn new(config: TrafficConfig, lane: u32) -> Self {
        TrafficStream {
            lane,
            load_line: 0,
            store_line: 0,
            lines: (config.array_bytes / CACHE_LINE_BYTES).max(1),
            store_accum: 0.0,
            pause_pending: false,
            label: format!("mess:traffic[lane {lane}]"),
            config,
        }
    }

    fn load_base(&self) -> u64 {
        TRAFFIC_BASE + self.lane as u64 * LANE_BLOCK_BYTES
    }

    fn store_base(&self) -> u64 {
        self.load_base() + LANE_BLOCK_BYTES / 2
    }
}

impl OpStream for TrafficStream {
    fn next_op(&mut self) -> Option<Op> {
        if self.pause_pending {
            self.pause_pending = false;
            return Some(Op::compute(self.config.pause_cycles));
        }
        if self.config.pause_cycles > 0 {
            self.pause_pending = true;
        }
        self.store_accum += self.config.store_mix;
        let op = if self.store_accum >= 1.0 {
            self.store_accum -= 1.0;
            let addr = self.store_base() + self.store_line * CACHE_LINE_BYTES;
            self.store_line = (self.store_line + 1) % self.lines;
            Op::store(addr)
        } else {
            let addr = self.load_base() + self.load_line * CACHE_LINE_BYTES;
            self.load_line = (self.load_line + 1) % self.lines;
            Op::load(addr)
        };
        Some(op)
    }

    fn fill_block(&mut self, out: &mut OpBlock) -> usize {
        // Compiled refill. The lane is NOT a periodic program: `store_accum` is a float
        // accumulator, and fractional store mixes (e.g. 0.3) drift in binary floating point
        // rather than repeating exactly — so the block replays the accumulator logic
        // verbatim instead of materializing a "repeating" body that would diverge from the
        // interpreted sequence after a few laps.
        out.clear();
        while !out.is_full() {
            if self.pause_pending {
                self.pause_pending = false;
                out.push(PackedOp::compute(self.config.pause_cycles));
                continue;
            }
            if self.config.pause_cycles > 0 {
                self.pause_pending = true;
            }
            self.store_accum += self.config.store_mix;
            if self.store_accum >= 1.0 {
                self.store_accum -= 1.0;
                let addr = self.store_base() + self.store_line * CACHE_LINE_BYTES;
                self.store_line = (self.store_line + 1) % self.lines;
                out.push(PackedOp::store(addr));
            } else {
                let addr = self.load_base() + self.load_line * CACHE_LINE_BYTES;
                self.load_line = (self.load_line + 1) % self.lines;
                out.push(PackedOp::load(addr));
            }
        }
        out.len()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mix_of(config: TrafficConfig, ops: usize) -> (u64, u64, u64) {
        let mut s = TrafficStream::new(config, 0);
        let (mut loads, mut stores, mut computes) = (0, 0, 0);
        for _ in 0..ops {
            match s.next_op().expect("traffic streams are infinite") {
                Op::Load { .. } => loads += 1,
                Op::Store { .. } => stores += 1,
                Op::Compute { .. } => computes += 1,
            }
        }
        (loads, stores, computes)
    }

    #[test]
    fn pure_load_lane_never_stores() {
        let (loads, stores, _) = mix_of(TrafficConfig::new(0.0, 0, 1 << 20), 10_000);
        assert_eq!(stores, 0);
        assert_eq!(loads, 10_000);
    }

    #[test]
    fn pure_store_lane_never_loads() {
        let (loads, stores, _) = mix_of(TrafficConfig::new(1.0, 0, 1 << 20), 10_000);
        assert_eq!(loads, 0);
        assert_eq!(stores, 10_000);
    }

    #[test]
    fn pause_cycles_interleave_compute_blocks() {
        let (loads, stores, computes) = mix_of(TrafficConfig::new(0.5, 80, 1 << 20), 10_000);
        assert_eq!(computes, 5_000, "one pause after every memory instruction");
        assert_eq!(loads + stores, 5_000);
    }

    #[test]
    fn lanes_use_disjoint_address_ranges() {
        let config = TrafficConfig::new(0.5, 0, 1 << 20);
        let addr_range = |lane: u32| {
            let mut s = TrafficStream::new(config, lane);
            let mut min = u64::MAX;
            let mut max = 0;
            for _ in 0..1_000 {
                if let Some(Op::Load { addr, .. } | Op::Store { addr }) = s.next_op() {
                    min = min.min(addr);
                    max = max.max(addr);
                }
            }
            (min, max)
        };
        let (_, max0) = addr_range(0);
        let (min1, _) = addr_range(1);
        assert!(max0 < min1, "lane 0 and lane 1 arrays must not overlap");
    }

    proptest! {
        #[test]
        fn block_refill_matches_next_op_for_any_mix_and_pause(
            mix in 0.0f64..=1.0,
            pause in 0u32..100,
            lane in 0u32..4,
        ) {
            // The lane's float accumulator makes its op sequence non-periodic, so the
            // compiled refill replays the generator logic — and must track the interpreted
            // stream exactly, including across block boundaries.
            let config = TrafficConfig { store_mix: mix, pause_cycles: pause, array_bytes: 1 << 16 };
            let mut interpreted = TrafficStream::new(config, lane);
            let mut compiled = TrafficStream::new(config, lane);
            let mut block = mess_cpu::OpBlock::new();
            let mut drained = Vec::new();
            for _ in 0..5 {
                prop_assert!(compiled.fill_block(&mut block) > 0, "traffic lanes are infinite");
                drained.extend(block.as_slice().iter().map(|p| p.unpack()));
            }
            for got in drained {
                prop_assert_eq!(Some(got), interpreted.next_op());
            }
        }

        #[test]
        fn store_mix_is_respected_within_one_percent(mix in 0.0f64..=1.0) {
            let (loads, stores, _) = mix_of(TrafficConfig::new(mix, 0, 1 << 20), 20_000);
            let measured = stores as f64 / (loads + stores) as f64;
            prop_assert!((measured - mix).abs() < 0.01, "mix {mix} measured {measured}");
        }

        #[test]
        fn streams_are_infinite_and_memory_ops_wrap_in_bounds(
            mix in 0.0f64..=1.0,
            pause in 0u32..200,
        ) {
            let config = TrafficConfig { store_mix: mix, pause_cycles: pause, array_bytes: 1 << 16 };
            let mut s = TrafficStream::new(config, 3);
            let lane_base = TRAFFIC_BASE + 3 * LANE_BLOCK_BYTES;
            for _ in 0..5_000 {
                let op = s.next_op();
                prop_assert!(op.is_some());
                if let Some(Op::Load { addr, .. } | Op::Store { addr }) = op {
                    prop_assert!(addr >= lane_base);
                    prop_assert!(addr < lane_base + LANE_BLOCK_BYTES);
                    let offset = addr % (LANE_BLOCK_BYTES / 2);
                    prop_assert!(offset < (1 << 16));
                }
            }
        }
    }
}
