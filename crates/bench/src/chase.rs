//! The Mess pointer-chase: the latency probe of the benchmark (paper Appendix A.1).
//!
//! A chain of dependent loads over a randomly permuted array that exceeds the last-level
//! cache. Because each load's address comes from the previous load's data, the loads execute
//! serially and the average load-to-use latency is simply `elapsed / loads` — which is exactly
//! how [`mess_cpu::RunReport::dependent_load_latency`] computes it for the probe core.

use mess_cpu::{Op, OpBlock, OpStream, PackedOp};
use mess_types::CACHE_LINE_BYTES;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Base address of the pointer-chase array; kept away from the traffic generator's arrays.
const CHASE_BASE: u64 = 0x40_0000_0000;

/// Configuration of the pointer-chase probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PointerChaseConfig {
    /// Size of the chased array in bytes; must exceed the LLC so every hop misses.
    pub array_bytes: u64,
    /// Number of dependent loads the probe executes before finishing.
    pub loads: u64,
    /// Seed of the permutation.
    pub seed: u64,
}

impl PointerChaseConfig {
    /// The benchmark default: an array of four times the LLC, traversed with `loads` hops.
    pub fn sized_against_llc(llc_bytes: u64, loads: u64) -> Self {
        PointerChaseConfig {
            array_bytes: llc_bytes * 4,
            loads,
            seed: 0x6d65_7373,
        }
    }

    /// Builds the probe's op stream.
    pub fn stream(&self) -> PointerChaseStream {
        PointerChaseStream::new(*self)
    }
}

/// The dependent-load op stream of the pointer-chase probe.
#[derive(Debug, Clone)]
pub struct PointerChaseStream {
    next_line: Vec<u32>,
    current: u32,
    remaining: u64,
    label: String,
}

impl PointerChaseStream {
    /// Creates the probe stream, building the single-cycle permutation.
    pub fn new(config: PointerChaseConfig) -> Self {
        let lines = (config.array_bytes / CACHE_LINE_BYTES).max(2) as u32;
        PointerChaseStream {
            next_line: single_cycle_permutation(lines, config.seed),
            current: 0,
            remaining: config.loads,
            label: "mess:pointer-chase".to_string(),
        }
    }
}

impl OpStream for PointerChaseStream {
    fn next_op(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = CHASE_BASE + self.current as u64 * CACHE_LINE_BYTES;
        self.current = self.next_line[self.current as usize];
        Some(Op::dependent_load(addr))
    }

    fn fill_block(&mut self, out: &mut OpBlock) -> usize {
        // Compiled refill: walk the pre-built permutation table in a tight packed loop.
        out.clear();
        while !out.is_full() && self.remaining > 0 {
            self.remaining -= 1;
            out.push(PackedOp::dependent_load(
                CHASE_BASE + self.current as u64 * CACHE_LINE_BYTES,
            ));
            self.current = self.next_line[self.current as usize];
        }
        out.len()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Builds a permutation of `0..n` that forms a single cycle, so a chase starting anywhere
/// visits every line exactly once per lap.
fn single_cycle_permutation(n: u32, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut next = vec![0u32; n as usize];
    for i in 0..n as usize {
        next[order[i] as usize] = order[(i + 1) % n as usize];
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn chase_emits_only_dependent_loads_and_stops() {
        let mut s = PointerChaseConfig {
            array_bytes: 1 << 16,
            loads: 333,
            seed: 1,
        }
        .stream();
        let mut n = 0;
        while let Some(op) = s.next_op() {
            assert!(matches!(
                op,
                Op::Load {
                    dependent: true,
                    ..
                }
            ));
            n += 1;
        }
        assert_eq!(n, 333);
    }

    #[test]
    fn one_lap_visits_every_line_once() {
        let lines = 512u64;
        let config = PointerChaseConfig {
            array_bytes: lines * CACHE_LINE_BYTES,
            loads: lines,
            seed: 99,
        };
        let mut s = config.stream();
        let mut seen = HashSet::new();
        while let Some(Op::Load { addr, .. }) = s.next_op() {
            assert!(seen.insert(addr));
        }
        assert_eq!(seen.len(), lines as usize);
    }

    proptest::proptest! {
        #[test]
        fn block_refill_matches_next_op_for_any_seed_and_size(
            lines in 2u64..600,
            loads in 0u64..1500,
            seed in 0u64..1_000_000,
        ) {
            // The compiled (fill_block) walk must be op-for-op identical to the interpreted
            // one, including exhaustion at the load cap and block-boundary crossings.
            let config = PointerChaseConfig {
                array_bytes: lines * CACHE_LINE_BYTES,
                loads,
                seed,
            };
            let mut interpreted = config.stream();
            let mut compiled = config.stream();
            let mut expected = Vec::new();
            while let Some(op) = interpreted.next_op() {
                expected.push(op);
            }
            let mut got = Vec::new();
            let mut block = mess_cpu::OpBlock::new();
            while compiled.fill_block(&mut block) > 0 {
                got.extend(block.as_slice().iter().map(|p| p.unpack()));
            }
            proptest::prop_assert_eq!(got, expected);
            proptest::prop_assert_eq!(compiled.fill_block(&mut block), 0);
        }
    }

    #[test]
    fn same_seed_gives_the_same_walk() {
        let config = PointerChaseConfig {
            array_bytes: 1 << 15,
            loads: 64,
            seed: 5,
        };
        let walk = |mut s: PointerChaseStream| {
            let mut v = Vec::new();
            while let Some(Op::Load { addr, .. }) = s.next_op() {
                v.push(addr);
            }
            v
        };
        assert_eq!(walk(config.stream()), walk(config.stream()));
    }
}
