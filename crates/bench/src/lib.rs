//! The Mess benchmark: pointer-chase, traffic generator and bandwidth–latency curve sweeps.
//!
//! The benchmark characterizes a memory system as a *family of bandwidth–latency curves*
//! (paper §II). One curve corresponds to one read/write instruction mix; each point on a
//! curve is measured by running a dependent-load pointer-chase on one core while the
//! remaining cores generate memory traffic at a configurable rate:
//!
//! * [`chase`] — the latency probe (random cyclic pointer-chase);
//! * [`traffic`] — the bandwidth generator (paced load/store mix over per-lane arrays);
//! * [`sweep`] — the driver that turns a (store-mix × pause) grid into a
//!   [`mess_core::CurveFamily`];
//! * [`trace`] — memory-trace capture and trace-driven replay (paper §IV-D);
//! * [`host`] — a portable native port that measures the build machine itself.
//!
//! Sweep points are independent simulations, so [`characterize`] runs them on a
//! `mess-exec` worker pool: the caller passes a `Send + Sync` *factory* and every worker
//! builds its own backend. Results are reassembled in sweep order, so the output is
//! byte-identical at any thread count.
//!
//! ```
//! use mess_bench::sweep::{characterize, SweepConfig};
//! use mess_cpu::CpuConfig;
//! use mess_memmodels::FixedLatencyModel;
//! use mess_types::{Frequency, Latency};
//!
//! let cpu = CpuConfig::server_class(4, Frequency::from_ghz(2.0));
//! let memory = || FixedLatencyModel::new(Latency::from_ns(60.0), cpu.frequency);
//! let result = characterize("example", &cpu, memory, &SweepConfig::quick())?;
//! assert!(!result.family.is_empty());
//! # Ok::<(), mess_types::MessError>(())
//! ```

#![warn(missing_docs)]

pub mod chase;
pub mod host;
pub mod sweep;
pub mod trace;
pub mod traffic;

pub use chase::{PointerChaseConfig, PointerChaseStream};
pub use sweep::{
    characterize, characterize_spec, characterize_with, measure_point, Characterization,
    MeasuredPoint, SweepConfig, SweepPreset, SweepSpec,
};
pub use trace::{replay, RecordingBackend, ReplayResult, Trace, TraceRecord};
pub use traffic::{TrafficConfig, TrafficStream};
