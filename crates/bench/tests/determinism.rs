//! Determinism regression: a characterization must be bit-identical at every worker count.
//!
//! The parallel sweep promises that threading only changes wall-clock time, never results:
//! points are pure per-point simulations collected in sweep order. These tests pin that
//! contract by running the same [`SweepConfig::reduced`] characterization at 1, 2 and 8
//! workers and comparing the outputs field by field and byte by byte.

use mess_bench::sweep::{characterize_with, Characterization, SweepConfig};
use mess_cpu::{CacheConfig, CpuConfig};
use mess_exec::ExecConfig;
use mess_memmodels::{FixedLatencyModel, Md1QueueModel};
use mess_types::{Bandwidth, Frequency, Latency};

fn small_cpu(cores: u32) -> CpuConfig {
    CpuConfig {
        llc: CacheConfig::new(512 * 1024, 8),
        ..CpuConfig::server_class(cores, Frequency::from_ghz(2.0))
    }
}

fn assert_bit_identical(reference: &Characterization, other: &Characterization, what: &str) {
    // Field-level equality first (better failure messages), then the byte-level artifact.
    assert_eq!(
        reference.points, other.points,
        "{what}: measured points diverged"
    );
    assert_eq!(
        reference.family, other.family,
        "{what}: curve family diverged"
    );
    assert_eq!(
        reference.to_csv(),
        other.to_csv(),
        "{what}: CSV artifact diverged"
    );
}

#[test]
fn md1_characterization_is_identical_at_1_2_and_8_threads() {
    let cpu = small_cpu(6);
    let factory = || {
        Md1QueueModel::new(
            Latency::from_ns(60.0),
            Bandwidth::from_gbs(20.0),
            cpu.frequency,
        )
    };
    let sweep = SweepConfig::reduced();
    let run = |threads: usize| {
        characterize_with(
            "determinism",
            &cpu,
            factory,
            &sweep,
            &ExecConfig::with_threads(threads),
        )
        .expect("reduced sweep is valid")
    };
    let reference = run(1);
    for threads in [2, 8] {
        assert_bit_identical(
            &reference,
            &run(threads),
            &format!("md1 @ {threads} threads"),
        );
    }
    // The reference itself is stable across repeated sequential runs, too.
    assert_bit_identical(&reference, &run(1), "md1 sequential rerun");
}

#[test]
fn fixed_latency_characterization_is_identical_at_1_2_and_8_threads() {
    let cpu = small_cpu(4);
    let factory = || FixedLatencyModel::new(Latency::from_ns(60.0), cpu.frequency);
    let sweep = SweepConfig::reduced();
    let run = |threads: usize| {
        characterize_with(
            "determinism-fixed",
            &cpu,
            factory,
            &sweep,
            &ExecConfig::with_threads(threads),
        )
        .expect("reduced sweep is valid")
    };
    let reference = run(1);
    for threads in [2, 8] {
        assert_bit_identical(
            &reference,
            &run(threads),
            &format!("fixed @ {threads} threads"),
        );
    }
}
