//! v2 protocol conformance for the trace-capturing wrapper: recording must be transparent.

use mess_bench::RecordingBackend;
use mess_memmodels::{FixedLatencyModel, SimpleDdrConfig, SimpleDdrModel};
use mess_types::{conformance, Frequency, Latency};

#[test]
fn recording_backend_is_protocol_transparent() {
    conformance::check(|| {
        RecordingBackend::new(FixedLatencyModel::new(
            Latency::from_ns(80.0),
            Frequency::from_ghz(2.0),
        ))
    });
}

#[test]
fn recording_backend_over_backpressured_model_conforms() {
    conformance::check(|| {
        RecordingBackend::new(SimpleDdrModel::new(
            SimpleDdrConfig::ddr4_2666_x6(),
            Frequency::from_ghz(2.0),
        ))
    });
}
