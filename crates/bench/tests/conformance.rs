//! v2 protocol conformance for the trace-capturing wrapper: recording must be transparent.

use mess_bench::RecordingBackend;
use mess_memmodels::{FixedLatencyModel, SimpleDdrConfig, SimpleDdrModel};
use mess_types::{conformance, Frequency, Latency};

#[test]
fn recording_backend_is_protocol_transparent() {
    conformance::check(|| {
        RecordingBackend::new(FixedLatencyModel::new(
            Latency::from_ns(80.0),
            Frequency::from_ghz(2.0),
        ))
    });
}

#[test]
fn recording_backend_over_backpressured_model_conforms() {
    conformance::check(|| {
        RecordingBackend::new(SimpleDdrModel::new(
            SimpleDdrConfig::ddr4_2666_x6(),
            Frequency::from_ghz(2.0),
        ))
    });
}

#[test]
fn recorder_and_benchmark_streams_are_send_at_the_type_level() {
    // The parallel sweep builds probes, traffic lanes and (for trace capture) recording
    // wrappers inside mess-exec workers; `OpStream: Send` already enforces the stream side
    // at the trait level — this pins the concrete types and the recorder wrapper too.
    fn assert_send<T: Send>() {}
    assert_send::<RecordingBackend<FixedLatencyModel>>();
    assert_send::<mess_bench::PointerChaseStream>();
    assert_send::<mess_bench::TrafficStream>();
    assert_send::<Box<dyn mess_cpu::OpStream>>();
}
